#include "service/session.h"

#include <chrono>
#include <thread>
#include <utility>

#include "obs/obs.h"
#include "service/checkpoint.h"
#include "service/service.h"
#include "tuner/batched_comparator.h"

namespace aimai {

Session::Session(TuningService* service, SessionOptions options,
                 std::shared_ptr<PlanCacheDomain> domain)
    : service_(service),
      options_(std::move(options)),
      env_(options_.env),
      health_(options_.name, service->options_.session_breaker) {
  // The session's optimizer shares the service-wide cache domain under
  // this session's namespace; the caller-provided env keeps everything
  // else (executor, index manager, noise RNG) private to the tenant.
  what_if_ = std::make_unique<WhatIfOptimizer>(
      env_.db, env_.stats, PlanEnumerator::Options(), std::move(domain),
      options_.name);
  env_.what_if = what_if_.get();
  candidates_ = std::make_unique<CandidateGenerator>(env_.db, env_.stats);
}

StatusOr<std::shared_ptr<TuningJob>> Session::Submit(
    std::shared_ptr<TuningJob> job) {
  AIMAI_RETURN_IF_ERROR(service_->Submit(job));
  return job;
}

StatusOr<std::shared_ptr<TuningJob>> Session::TuneQuery(
    const QuerySpec& query, const Configuration& base) {
  AIMAI_RETURN_IF_ERROR(what_if_->ValidateQuery(query));
  auto job = service_->NewJob(JobType::kQueryTuning, this);
  job->query_input = query;
  job->base_config = base;
  return Submit(std::move(job));
}

StatusOr<std::shared_ptr<TuningJob>> Session::TuneWorkload(
    std::vector<WorkloadQuery> workload, const Configuration& base) {
  if (workload.empty()) {
    return Status::InvalidArgument("workload is empty");
  }
  for (const WorkloadQuery& wq : workload) {
    AIMAI_RETURN_IF_ERROR(what_if_->ValidateQuery(wq.query));
    if (wq.weight < 0) {
      return Status::InvalidArgument("workload weight is negative");
    }
  }
  auto job = service_->NewJob(JobType::kWorkloadTuning, this);
  job->workload_input = std::move(workload);
  job->base_config = base;
  return Submit(std::move(job));
}

StatusOr<std::shared_ptr<TuningJob>> Session::TuneContinuous(
    const QuerySpec& query, const Configuration& initial) {
  ContinuousTuner::QueryState state;
  state.current = initial;
  return ResumeContinuous(query, std::move(state));
}

StatusOr<std::shared_ptr<TuningJob>> Session::ResumeContinuous(
    const QuerySpec& query, ContinuousTuner::QueryState state) {
  AIMAI_RETURN_IF_ERROR(what_if_->ValidateQuery(query));
  if (state.finished) {
    return Status::InvalidArgument(
        "continuous-tuning state is already finished");
  }
  auto job = service_->NewJob(JobType::kContinuousTuning, this);
  job->query_input = query;
  job->start_state = std::move(state);
  return Submit(std::move(job));
}

Status Session::WriteCheckpoint(const TuningJob& job,
                                std::ostream* out) const {
  if (job.type() != JobType::kContinuousTuning) {
    return Status::InvalidArgument("only continuous jobs checkpoint");
  }
  if (job.phase() != JobPhase::kCheckpointed) {
    return Status::FailedPrecondition(
        "job is not checkpointed (drain it first)");
  }
  ContinuousCheckpoint ckpt;
  ckpt.session_name = options_.name;
  ckpt.query_name = job.query_input.name;
  ckpt.state = job.outputs().continuous_state;
  return SaveContinuousCheckpoint(out, ckpt, repo_);
}

std::unique_ptr<CostComparator> Session::MakeComparator(
    int* model_version, std::string* model_name) const {
  if (model_version != nullptr) *model_version = 0;
  if (model_name != nullptr) model_name->clear();
  if (options_.model.empty()) {
    return std::make_unique<OptimizerComparator>(options_.comparator);
  }
  LearningLoop* learning = service_->learning();
  std::shared_ptr<const ModelSnapshot> snapshot;
  if (learning != nullptr) {
    // Pickup barrier: an in-flight retrain publishes (or dies) before the
    // resolve below, so the iteration at which the tenant-adapted model
    // takes over does not depend on background scheduling.
    learning->BarrierFor(options_.name);
    snapshot = learning->ResolveModel(options_.model, options_.name);
  } else {
    // Latest published version; Publish() between two calls is the hot
    // swap — the snapshot in hand stays coherent for the whole round.
    snapshot = service_->models().Snapshot(options_.model);
  }
  AIMAI_CHECK_MSG(snapshot != nullptr,
                  "model disappeared from the registry");
  if (model_version != nullptr) *model_version = snapshot->version;
  if (model_name != nullptr) *model_name = snapshot->name;
  auto comparator = std::make_unique<ClassifierComparator>(
      snapshot->classifier, snapshot->featurizer);
  if (learning != nullptr) {
    comparator->set_decision_sink(learning->SinkFor(options_.name));
  }
  return comparator;
}

void Session::StallUntilRescued(TuningJob* job) {
  AIMAI_SPAN("service.job.stall");
  // Wedged: the loop deliberately reads the flag through the
  // non-heartbeat peek, so the watchdog sees a frozen poll counter and
  // declares the attempt stalled. The time cap is a safety net for runs
  // without stall detection enabled.
  const auto start = std::chrono::steady_clock::now();
  while (!job->token()->cancel_requested() &&
         std::chrono::steady_clock::now() - start < std::chrono::seconds(30)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void Session::RunJob(TuningJob* job) {
  if (job->token()->cancelled() && !job->drain_requested()) {
    job->Finish(JobPhase::kCancelled,
                Status::Cancelled("job cancelled before it started"));
    return;
  }
  // Tenant gate: a quarantined session's jobs are rejected here, before
  // any shared structure (cache domain, pool, registry) is touched —
  // that is what keeps other tenants bit-identical. The rejection is not
  // a health outcome; while open, the breaker cools down per denied call.
  if (!health_.AllowJob()) {
    job->Finish(JobPhase::kFailed,
                Status::Unavailable("session '" + options_.name +
                                    "' is quarantined; job rejected"));
    return;
  }
  if (!options_.model.empty() &&
      service_->models().Snapshot(options_.model) == nullptr) {
    if (job->type() != JobType::kRetrain) health_.RecordOutcome(false);
    job->Finish(JobPhase::kFailed,
                Status::FailedPrecondition("session model '" +
                                           options_.model +
                                           "' is not published"));
    return;
  }

  FaultInjector* faults = service_->options_.faults;
  // Injected crash for one-shot jobs: the attempt's token fires before
  // the tuner starts, so it dies at its first cancellation poll with
  // nothing half-written. Continuous jobs crash mid-round instead (the
  // comparator factory injects), exercising the resume-from-state path.
  if (faults != nullptr && job->type() != JobType::kContinuousTuning &&
      faults->ShouldFail(FaultPoint::kJobCrash)) {
    job->CountFaultEvent();
    job->RequestCrash();
  }
  job->MarkRunning();
  if (faults != nullptr && faults->ShouldFail(FaultPoint::kJobStall)) {
    job->CountFaultEvent();
    StallUntilRescued(job);
  }

  JobPhase phase = JobPhase::kFailed;
  Status status = Status::Internal("job attempt produced no result");
  switch (job->type()) {
    case JobType::kQueryTuning:
      RunQueryJob(job, &phase, &status);
      break;
    case JobType::kWorkloadTuning:
      RunWorkloadJob(job, &phase, &status);
      break;
    case JobType::kContinuousTuning:
      RunContinuousJob(job, &phase, &status);
      break;
    case JobType::kRetrain:
      service_->learning()->RunRetrainJob(this, job, &phase, &status);
      break;
  }
  FinishAttempt(job, phase, std::move(status));
}

void Session::FinishAttempt(TuningJob* job, JobPhase phase, Status status) {
  const bool timed_out = job->timed_out();
  const bool crashed = job->crashed();
  // Background retrains are service work, not tenant work: their failures
  // (data starvation, chaos kills) never count toward the tenant breaker.
  const bool health_counts = job->type() != JobType::kRetrain;
  if ((timed_out || crashed) && !job->user_cancelled()) {
    // The attempt was killed by the watchdog or a crash, not by the
    // caller. (Fault *events* are counted at the injection/escalation
    // sites; here the attempt is retried within the budget or finished.)
    if (health_counts) health_.RecordOutcome(false);
    const bool service_draining =
        service_->draining_.load(std::memory_order_acquire);
    if (!job->drain_requested() && !service_draining &&
        job->attempt() < job->max_attempts() && job->PrepareRetry()) {
      // Phase is back to kQueued; the runner loop requeues the job with
      // accounted backoff. Callers' Wait() handles stay valid.
      return;
    }
    if (timed_out) {
      job->Finish(JobPhase::kTimedOut,
                  Status::DeadlineExceeded(
                      "job exceeded its " +
                      std::to_string(job->deadline_ms()) +
                      " ms deadline (attempt " +
                      std::to_string(job->attempt()) + " of " +
                      std::to_string(job->max_attempts()) + ")"));
    } else {
      job->Finish(JobPhase::kFailed,
                  Status::Unavailable("job crashed (attempt " +
                                      std::to_string(job->attempt()) +
                                      " of " +
                                      std::to_string(job->max_attempts()) +
                                      ")"));
    }
    return;
  }

  if (phase == JobPhase::kDone || phase == JobPhase::kCheckpointed) {
    if (health_counts) health_.RecordOutcome(true);
  } else if (phase == JobPhase::kFailed) {
    if (health_counts) health_.RecordOutcome(false);
  }
  // kCancelled is the caller's choice, not a tenant fault: no outcome.
  job->Finish(phase, std::move(status));
}

void Session::RunQueryJob(TuningJob* job, JobPhase* phase, Status* status) {
  QueryLevelTuner::Options qopts;
  qopts.max_new_indexes = options_.max_new_indexes;
  qopts.storage_budget_bytes = options_.storage_budget_bytes;
  qopts.pool = service_->pool();
  qopts.cancel = job->token();
  QueryLevelTuner tuner(env_.db, env_.what_if, candidates_.get(), qopts);
  std::unique_ptr<CostComparator> comparator = MakeComparator();
  StatusOr<QueryTuningResult> result =
      tuner.TryTune(job->query_input, job->base_config, *comparator);
  if (!result.ok()) {
    *phase = result.status().code() == StatusCode::kCancelled
                 ? JobPhase::kCancelled
                 : JobPhase::kFailed;
    *status = result.status();
    return;
  }
  job->mutable_outputs()->query = std::move(result).value();
  *phase = JobPhase::kDone;
  *status = Status::Ok();
}

void Session::RunWorkloadJob(TuningJob* job, JobPhase* phase, Status* status) {
  WorkloadLevelTuner::Options wopts;
  wopts.max_new_indexes = options_.max_new_indexes;
  wopts.storage_budget_bytes = options_.storage_budget_bytes;
  wopts.pool = service_->pool();
  wopts.cancel = job->token();
  WorkloadLevelTuner tuner(env_.db, env_.what_if, candidates_.get(), wopts);
  std::unique_ptr<CostComparator> comparator = MakeComparator();
  StatusOr<WorkloadTuningResult> result =
      tuner.TryTune(job->workload_input, job->base_config, *comparator);
  if (!result.ok()) {
    *phase = result.status().code() == StatusCode::kCancelled
                 ? JobPhase::kCancelled
                 : JobPhase::kFailed;
    *status = result.status();
    return;
  }
  job->mutable_outputs()->workload = std::move(result).value();
  *phase = JobPhase::kDone;
  *status = Status::Ok();
}

void Session::RunContinuousJob(TuningJob* job, JobPhase* phase,
                               Status* status) {
  ContinuousTuner::Options copts;
  copts.iterations = options_.iterations;
  copts.max_indexes_per_iteration = options_.max_new_indexes;
  copts.regression_threshold = options_.comparator.regression_threshold;
  copts.stop_on_regression = options_.stop_on_regression;
  copts.storage_budget_bytes = options_.storage_budget_bytes;
  copts.verify_reverts = options_.verify_reverts;
  copts.quarantine_after = options_.quarantine_after;
  copts.pool = service_->pool();
  copts.cancel = job->token();
  ContinuousTuner tuner(&env_, candidates_.get(), copts);

  ContinuousTuner::QueryState* state =
      &job->mutable_outputs()->continuous_state;
  *state = std::move(job->start_state);
  const size_t base_iterations = state->iterations.size();

  // The factory re-snapshots the registry each iteration: a Publish()
  // mid-run is picked up at the next iteration boundary (hot swap). The
  // version behind each iteration is remembered so its outcome can feed
  // the registry's drift detector. An injected kJobCrash fires here —
  // genuinely mid-round — and the loop unwinds at the next boundary with
  // the iteration unspent and the state resumable.
  FaultInjector* faults = service_->options_.faults;
  LearningLoop* learning = service_->learning();
  std::vector<int> versions;
  std::vector<std::string> names;
  ContinuousTuner::AdaptHook adapt_hook;
  if (learning != nullptr && !options_.model.empty()) {
    // Execution-feedback harvest: runs on this (the tenant's serialized
    // job) thread after each iteration's measurement lands in the repo.
    adapt_hook = [this, learning] { learning->Harvest(this); };
  }
  const ContinuousTuner::QueryTrace trace = tuner.TuneQueryResumable(
      job->query_input, state,
      [this, job, faults, &versions, &names] {
        if (faults != nullptr &&
            faults->ShouldFail(FaultPoint::kJobCrash)) {
          job->CountFaultEvent();
          job->RequestCrash();
        }
        int version = 0;
        std::string name;
        std::unique_ptr<CostComparator> comparator =
            MakeComparator(&version, &name);
        versions.push_back(version);
        names.push_back(std::move(name));
        return comparator;
      },
      &repo_, adapt_hook);
  job->mutable_outputs()->trace = trace;

  // Post-publish drift feedback: each completed iteration reports whether
  // it regressed under the model (name, version) that actually gated it —
  // with the learning loop on, that may be this tenant's adapted model.
  if (!options_.model.empty()) {
    for (size_t i = base_iterations; i < state->iterations.size(); ++i) {
      const size_t k = i - base_iterations;
      if (k >= versions.size()) break;
      service_->models().ReportOutcome(names[k], versions[k], options_.name,
                                       state->iterations[i].regressed);
    }
  }

  if (state->finished) {
    *phase = JobPhase::kDone;
    *status = Status::Ok();
  } else if (job->drain_requested() && !job->timed_out() && !job->crashed()) {
    AIMAI_COUNTER_INC("service.jobs_checkpointed");
    *phase = JobPhase::kCheckpointed;
    *status = Status::Ok();
  } else {
    *phase = JobPhase::kCancelled;
    *status = Status::Cancelled("continuous tuning cancelled at iteration " +
                                std::to_string(state->next_iteration));
  }
}

}  // namespace aimai
