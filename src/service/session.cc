#include "service/session.h"

#include <utility>

#include "obs/obs.h"
#include "service/checkpoint.h"
#include "service/service.h"
#include "tuner/batched_comparator.h"

namespace aimai {

Session::Session(TuningService* service, SessionOptions options,
                 std::shared_ptr<PlanCacheDomain> domain)
    : service_(service), options_(std::move(options)), env_(options_.env) {
  // The session's optimizer shares the service-wide cache domain under
  // this session's namespace; the caller-provided env keeps everything
  // else (executor, index manager, noise RNG) private to the tenant.
  what_if_ = std::make_unique<WhatIfOptimizer>(
      env_.db, env_.stats, PlanEnumerator::Options(), std::move(domain),
      options_.name);
  env_.what_if = what_if_.get();
  candidates_ = std::make_unique<CandidateGenerator>(env_.db, env_.stats);
}

StatusOr<std::shared_ptr<TuningJob>> Session::Submit(
    std::shared_ptr<TuningJob> job) {
  AIMAI_RETURN_IF_ERROR(service_->Submit(job));
  return job;
}

StatusOr<std::shared_ptr<TuningJob>> Session::TuneQuery(
    const QuerySpec& query, const Configuration& base) {
  AIMAI_RETURN_IF_ERROR(what_if_->ValidateQuery(query));
  auto job = service_->NewJob(JobType::kQueryTuning, this);
  job->query_input = query;
  job->base_config = base;
  return Submit(std::move(job));
}

StatusOr<std::shared_ptr<TuningJob>> Session::TuneWorkload(
    std::vector<WorkloadQuery> workload, const Configuration& base) {
  if (workload.empty()) {
    return Status::InvalidArgument("workload is empty");
  }
  for (const WorkloadQuery& wq : workload) {
    AIMAI_RETURN_IF_ERROR(what_if_->ValidateQuery(wq.query));
    if (wq.weight < 0) {
      return Status::InvalidArgument("workload weight is negative");
    }
  }
  auto job = service_->NewJob(JobType::kWorkloadTuning, this);
  job->workload_input = std::move(workload);
  job->base_config = base;
  return Submit(std::move(job));
}

StatusOr<std::shared_ptr<TuningJob>> Session::TuneContinuous(
    const QuerySpec& query, const Configuration& initial) {
  ContinuousTuner::QueryState state;
  state.current = initial;
  return ResumeContinuous(query, std::move(state));
}

StatusOr<std::shared_ptr<TuningJob>> Session::ResumeContinuous(
    const QuerySpec& query, ContinuousTuner::QueryState state) {
  AIMAI_RETURN_IF_ERROR(what_if_->ValidateQuery(query));
  if (state.finished) {
    return Status::InvalidArgument(
        "continuous-tuning state is already finished");
  }
  auto job = service_->NewJob(JobType::kContinuousTuning, this);
  job->query_input = query;
  job->start_state = std::move(state);
  return Submit(std::move(job));
}

Status Session::WriteCheckpoint(const TuningJob& job,
                                std::ostream* out) const {
  if (job.type() != JobType::kContinuousTuning) {
    return Status::InvalidArgument("only continuous jobs checkpoint");
  }
  if (job.phase() != JobPhase::kCheckpointed) {
    return Status::FailedPrecondition(
        "job is not checkpointed (drain it first)");
  }
  ContinuousCheckpoint ckpt;
  ckpt.session_name = options_.name;
  ckpt.query_name = job.query_input.name;
  ckpt.state = job.outputs().continuous_state;
  return SaveContinuousCheckpoint(out, ckpt, repo_);
}

std::unique_ptr<CostComparator> Session::MakeComparator() const {
  if (options_.model.empty()) {
    return std::make_unique<OptimizerComparator>(options_.comparator);
  }
  // Latest published version; Publish() between two calls is the hot
  // swap — the snapshot in hand stays coherent for the whole round.
  std::shared_ptr<const ModelSnapshot> snapshot =
      service_->models().Snapshot(options_.model);
  AIMAI_CHECK_MSG(snapshot != nullptr,
                  "model disappeared from the registry");
  return std::make_unique<ClassifierComparator>(snapshot->classifier,
                                                snapshot->featurizer);
}

void Session::RunJob(TuningJob* job) {
  if (job->token()->cancelled() && !job->drain_requested()) {
    job->Finish(JobPhase::kCancelled,
                Status::Cancelled("job cancelled before it started"));
    return;
  }
  if (!options_.model.empty() &&
      service_->models().Snapshot(options_.model) == nullptr) {
    job->Finish(JobPhase::kFailed,
                Status::FailedPrecondition("session model '" +
                                           options_.model +
                                           "' is not published"));
    return;
  }
  job->MarkRunning();
  switch (job->type()) {
    case JobType::kQueryTuning:
      RunQueryJob(job);
      break;
    case JobType::kWorkloadTuning:
      RunWorkloadJob(job);
      break;
    case JobType::kContinuousTuning:
      RunContinuousJob(job);
      break;
  }
}

void Session::RunQueryJob(TuningJob* job) {
  QueryLevelTuner::Options qopts;
  qopts.max_new_indexes = options_.max_new_indexes;
  qopts.storage_budget_bytes = options_.storage_budget_bytes;
  qopts.pool = service_->pool();
  qopts.cancel = job->token();
  QueryLevelTuner tuner(env_.db, env_.what_if, candidates_.get(), qopts);
  std::unique_ptr<CostComparator> comparator = MakeComparator();
  StatusOr<QueryTuningResult> result =
      tuner.TryTune(job->query_input, job->base_config, *comparator);
  if (!result.ok()) {
    job->Finish(result.status().code() == StatusCode::kCancelled
                    ? JobPhase::kCancelled
                    : JobPhase::kFailed,
                result.status());
    return;
  }
  job->mutable_outputs()->query = std::move(result).value();
  job->Finish(JobPhase::kDone, Status::Ok());
}

void Session::RunWorkloadJob(TuningJob* job) {
  WorkloadLevelTuner::Options wopts;
  wopts.max_new_indexes = options_.max_new_indexes;
  wopts.storage_budget_bytes = options_.storage_budget_bytes;
  wopts.pool = service_->pool();
  wopts.cancel = job->token();
  WorkloadLevelTuner tuner(env_.db, env_.what_if, candidates_.get(), wopts);
  std::unique_ptr<CostComparator> comparator = MakeComparator();
  StatusOr<WorkloadTuningResult> result =
      tuner.TryTune(job->workload_input, job->base_config, *comparator);
  if (!result.ok()) {
    job->Finish(result.status().code() == StatusCode::kCancelled
                    ? JobPhase::kCancelled
                    : JobPhase::kFailed,
                result.status());
    return;
  }
  job->mutable_outputs()->workload = std::move(result).value();
  job->Finish(JobPhase::kDone, Status::Ok());
}

void Session::RunContinuousJob(TuningJob* job) {
  ContinuousTuner::Options copts;
  copts.iterations = options_.iterations;
  copts.max_indexes_per_iteration = options_.max_new_indexes;
  copts.regression_threshold = options_.comparator.regression_threshold;
  copts.stop_on_regression = options_.stop_on_regression;
  copts.storage_budget_bytes = options_.storage_budget_bytes;
  copts.verify_reverts = options_.verify_reverts;
  copts.quarantine_after = options_.quarantine_after;
  copts.pool = service_->pool();
  copts.cancel = job->token();
  ContinuousTuner tuner(&env_, candidates_.get(), copts);

  // The factory re-snapshots the registry each iteration: a Publish()
  // mid-run is picked up at the next iteration boundary (hot swap).
  ContinuousTuner::QueryState* state = &job->mutable_outputs()->continuous_state;
  *state = std::move(job->start_state);
  const ContinuousTuner::QueryTrace trace = tuner.TuneQueryResumable(
      job->query_input, state, [this] { return MakeComparator(); }, &repo_,
      /*adapt_hook=*/nullptr);
  job->mutable_outputs()->trace = trace;

  if (state->finished) {
    job->Finish(JobPhase::kDone, Status::Ok());
  } else if (job->drain_requested()) {
    AIMAI_COUNTER_INC("service.jobs_checkpointed");
    job->Finish(JobPhase::kCheckpointed, Status::Ok());
  } else {
    job->Finish(JobPhase::kCancelled,
                Status::Cancelled(
                    "continuous tuning cancelled at iteration " +
                    std::to_string(state->next_iteration)));
  }
}

}  // namespace aimai
