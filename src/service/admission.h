#ifndef AIMAI_SERVICE_ADMISSION_H_
#define AIMAI_SERVICE_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "common/status.h"

namespace aimai {

class JobQueue;

/// Admission control for the service's job intake: bounds the queue (shed
/// load at submit), counts what was shed, and tracks the in-flight gauge.
/// The in-flight *bound* itself is enforced structurally — the service
/// sizes its runner fleet to min(job_runners, max_inflight_jobs) and each
/// runner executes one job at a time — so the controller's job is to make
/// the queue bound explicit at submit time and the load observable:
///   service.jobs_admitted / service.jobs_shed   (counters)
///   service.queue_depth / service.inflight_jobs (gauges)
class AdmissionController {
 public:
  AdmissionController(int max_inflight, int max_queued)
      : max_inflight_(max_inflight), max_queued_(max_queued) {}

  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Per-tenant admit/shed tallies (see TenantStats below).
  struct TenantCounts {
    int64_t admitted = 0;
    int64_t shed = 0;
  };

  /// Gate at submit: OK admits (and counts), ResourceExhausted sheds.
  /// `queue_depth` is the queue's current depth; the race against
  /// concurrent submits is benign — JobQueue::Push re-checks its bound
  /// authoritatively, this gate exists to shed and count early. A
  /// non-empty `tenant` attributes the outcome to that tenant's bucket,
  /// so under open-loop overload operators can see *whose* load was
  /// shed, not just how much.
  Status AdmitSubmit(size_t queue_depth, const std::string& tenant = "");

  /// In-flight accounting (runner threads).
  void JobStarted();
  void JobFinished();

  int max_inflight() const { return max_inflight_; }
  int max_queued() const { return max_queued_; }
  int inflight() const { return inflight_.load(std::memory_order_relaxed); }
  int64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  int64_t shed() const { return shed_.load(std::memory_order_relaxed); }

  /// One tenant's tallies (zeros for a tenant never seen).
  TenantCounts TenantStats(const std::string& tenant) const;
  /// Snapshot of every tenant bucket.
  std::map<std::string, TenantCounts> AllTenantStats() const;

  /// Publishes the queue-depth gauge (called on every push/claim edge).
  static void RecordQueueDepth(size_t depth);

 private:
  const int max_inflight_;
  const int max_queued_;
  std::atomic<int> inflight_{0};
  std::atomic<int64_t> admitted_{0};
  std::atomic<int64_t> shed_{0};
  mutable std::mutex tenants_mu_;
  std::map<std::string, TenantCounts> tenants_;
};

}  // namespace aimai

#endif  // AIMAI_SERVICE_ADMISSION_H_
