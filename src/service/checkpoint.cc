#include "service/checkpoint.h"

#include <utility>
#include <vector>

#include "common/serialize.h"

namespace aimai {

namespace {

constexpr const char* kMagic = "aimai-continuous-ckpt";
constexpr int64_t kVersion = 1;

void SaveIndexDef(TokenWriter* w, const IndexDef& def) {
  w->WriteInt(def.table_id);
  w->WriteIntVector(def.key_columns);
  w->WriteIntVector(def.include_columns);
  w->WriteBool(def.is_columnstore);
}

IndexDef LoadIndexDef(TokenReader* r) {
  IndexDef def;
  def.table_id = static_cast<int>(r->ReadInt());
  def.key_columns = r->ReadIntVector();
  def.include_columns = r->ReadIntVector();
  def.is_columnstore = r->ReadBool();
  return def;
}

void SaveConfiguration(TokenWriter* w, const Configuration& config) {
  const std::vector<IndexDef> indexes = config.indexes();
  w->WriteUInt(indexes.size());
  for (const IndexDef& def : indexes) SaveIndexDef(w, def);
}

Configuration LoadConfiguration(TokenReader* r) {
  Configuration config;
  const uint64_t n = r->ReadUInt();
  for (uint64_t i = 0; i < n && r->ok(); ++i) config.Add(LoadIndexDef(r));
  return config;
}

void SaveIterationRecord(TokenWriter* w,
                         const ContinuousTuner::IterationRecord& ir) {
  w->WriteInt(ir.iteration);
  w->WriteInt(ir.num_new_indexes);
  w->WriteDouble(ir.measured_cost);
  w->WriteBool(ir.regressed);
  w->WriteBool(ir.failed);
  w->WriteBool(ir.quarantined);
}

ContinuousTuner::IterationRecord LoadIterationRecord(TokenReader* r) {
  ContinuousTuner::IterationRecord ir;
  ir.iteration = static_cast<int>(r->ReadInt());
  ir.num_new_indexes = static_cast<int>(r->ReadInt());
  ir.measured_cost = r->ReadDouble();
  ir.regressed = r->ReadBool();
  ir.failed = r->ReadBool();
  ir.quarantined = r->ReadBool();
  return ir;
}

}  // namespace

Status SaveContinuousCheckpoint(std::ostream* out,
                                const ContinuousCheckpoint& ckpt,
                                const ExecutionDataRepository& repo) {
  if (out == nullptr) return Status::InvalidArgument("null output stream");
  TokenWriter w(out);
  w.WriteTag(kMagic);
  w.WriteInt(kVersion);
  w.WriteString(ckpt.session_name);
  w.WriteString(ckpt.query_name);

  const ContinuousTuner::QueryState& s = ckpt.state;
  w.WriteBool(s.initialized);
  w.WriteBool(s.finished);
  w.WriteInt(s.next_iteration);
  SaveConfiguration(&w, s.current);
  w.WriteDouble(s.initial_cost);
  w.WriteDouble(s.current_cost);
  w.WriteDouble(s.current_est_cost);
  w.WriteBool(s.regress_final);
  w.WriteString(s.last_skipped_fp);
  w.WriteUInt(s.regression_counts.size());
  for (const auto& kv : s.regression_counts) {  // std::map: sorted, stable.
    w.WriteString(kv.first);
    w.WriteInt(kv.second);
  }
  w.WriteUInt(s.quarantined.size());
  for (const std::string& fp : s.quarantined) w.WriteString(fp);
  w.WriteUInt(s.iterations.size());
  for (const auto& ir : s.iterations) SaveIterationRecord(&w, ir);

  if (!out->good()) {
    return Status::Unavailable("checkpoint write failed");
  }
  // The collected execution data rides along in the existing repository
  // format, checksums and all.
  return SaveRepository(out, repo);
}

Status LoadContinuousCheckpoint(std::istream* in, ContinuousCheckpoint* ckpt,
                                ExecutionDataRepository* repo,
                                RepositoryLoadStats* stats) {
  if (in == nullptr || ckpt == nullptr || repo == nullptr) {
    return Status::InvalidArgument("null checkpoint load argument");
  }
  TokenReader r(in, /*lenient=*/true);
  r.ExpectTag(kMagic);
  const int64_t version = r.ReadInt();
  if (!r.ok()) {
    return Status::DataLoss("checkpoint header unreadable: " +
                            r.status().message());
  }
  if (version != kVersion) {
    return Status::DataLoss("unsupported checkpoint version " +
                            std::to_string(version));
  }
  ckpt->session_name = r.ReadString();
  ckpt->query_name = r.ReadString();

  ContinuousTuner::QueryState s;
  s.initialized = r.ReadBool();
  s.finished = r.ReadBool();
  s.next_iteration = static_cast<int>(r.ReadInt());
  s.current = LoadConfiguration(&r);
  s.initial_cost = r.ReadDouble();
  s.current_cost = r.ReadDouble();
  s.current_est_cost = r.ReadDouble();
  s.regress_final = r.ReadBool();
  s.last_skipped_fp = r.ReadString();
  const uint64_t num_counts = r.ReadUInt();
  for (uint64_t i = 0; i < num_counts && r.ok(); ++i) {
    std::string fp = r.ReadString();
    const int count = static_cast<int>(r.ReadInt());
    s.regression_counts.emplace(std::move(fp), count);
  }
  const uint64_t num_quarantined = r.ReadUInt();
  for (uint64_t i = 0; i < num_quarantined && r.ok(); ++i) {
    s.quarantined.insert(r.ReadString());
  }
  const uint64_t num_iterations = r.ReadUInt();
  for (uint64_t i = 0; i < num_iterations && r.ok(); ++i) {
    s.iterations.push_back(LoadIterationRecord(&r));
  }
  if (!r.ok()) {
    // Unlike telemetry records, the loop state is not redundant: a corrupt
    // checkpoint must not resume as something else.
    return Status::DataLoss("checkpoint state corrupt: " +
                            r.status().message());
  }
  ckpt->state = std::move(s);
  return LoadRepository(in, repo, stats);
}

}  // namespace aimai
