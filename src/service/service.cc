#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "obs/obs.h"

namespace aimai {

TuningService::TuningService(ServiceOptions options)
    : options_(options),
      admission_(std::min(options.max_inflight_jobs, options.job_runners),
                 options.max_queued_jobs),
      queue_(options.max_queued_jobs) {
  PlanCacheDomain::Options cache;
  cache.shards = options_.cache_shards;
  cache.shard_capacity = static_cast<size_t>(options_.cache_shard_capacity);
  domain_ = std::make_shared<PlanCacheDomain>(cache);

  const int threads =
      options_.threads > 0 ? options_.threads : ConfiguredThreads();
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);

  // The runner fleet is the in-flight bound: each runner executes one job
  // at a time, so min(job_runners, max_inflight_jobs) runners enforce
  // max_inflight_jobs structurally.
  const int runners = std::min(options_.job_runners,
                               options_.max_inflight_jobs);
  runners_.reserve(static_cast<size_t>(runners));
  for (int i = 0; i < runners; ++i) {
    runners_.emplace_back([this] { RunnerLoop(); });
  }
}

StatusOr<std::unique_ptr<TuningService>> TuningService::Create(
    ServiceOptions options) {
  AIMAI_RETURN_IF_ERROR(options.Validate());
  return std::unique_ptr<TuningService>(new TuningService(options));
}

TuningService::~TuningService() { Shutdown(); }

StatusOr<Session*> TuningService::CreateSession(SessionOptions options) {
  AIMAI_RETURN_IF_ERROR(options.Validate());
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is shut down");
  }
  if (draining_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is draining");
  }
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (sessions_.size() >= static_cast<size_t>(options_.max_sessions)) {
    return Status::ResourceExhausted("session limit reached");
  }
  for (const auto& s : sessions_) {
    if (s->name() == options.name) {
      return Status::InvalidArgument("session name '" + options.name +
                                     "' is already registered");
    }
  }
  sessions_.push_back(std::unique_ptr<Session>(
      new Session(this, std::move(options), domain_)));
  AIMAI_COUNTER_INC("service.sessions_created");
  return sessions_.back().get();
}

std::shared_ptr<TuningJob> TuningService::NewJob(JobType type,
                                                 Session* session) {
  return std::make_shared<TuningJob>(
      next_job_id_.fetch_add(1, std::memory_order_relaxed), type, session,
      session->name(), session->priority());
}

Status TuningService::Submit(std::shared_ptr<TuningJob> job) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is shut down");
  }
  if (draining_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is draining");
  }
  AIMAI_RETURN_IF_ERROR(admission_.AdmitSubmit(queue_.depth()));
  AIMAI_RETURN_IF_ERROR(queue_.Push(std::move(job)));
  AdmissionController::RecordQueueDepth(queue_.depth());
  return Status::Ok();
}

void TuningService::RunnerLoop() {
  while (std::shared_ptr<TuningJob> job = queue_.Claim()) {
    AdmissionController::RecordQueueDepth(queue_.depth());
    admission_.JobStarted();
    const auto start = std::chrono::steady_clock::now();
    job->session()->RunJob(job.get());
    const auto elapsed = std::chrono::steady_clock::now() - start;
    AIMAI_HIST_RECORD(
        "service.job.ns",
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
    AIMAI_COUNTER_INC("service.jobs_finished");
    admission_.JobFinished();
    queue_.Release(job->session_name());
    PublishGauges();
  }
}

void TuningService::PublishGauges() {
  if (!obs::Enabled()) return;
  obs::Registry().GetGauge("service.cache.hit_rate")->Set(CacheHitRate());
  obs::Registry()
      .GetGauge("service.cache.size")
      ->Set(static_cast<double>(domain_->size()));
}

double TuningService::CacheHitRate() const {
  const int64_t lookups = domain_->num_lookups();
  if (lookups == 0) return 0.0;
  return static_cast<double>(domain_->num_hits()) /
         static_cast<double>(lookups);
}

int TuningService::num_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return static_cast<int>(sessions_.size());
}

Status TuningService::Drain() {
  draining_.store(true, std::memory_order_release);

  // Jobs still queued never started; cancel them where they stand.
  for (const std::shared_ptr<TuningJob>& job : queue_.TakeQueued()) {
    job->Finish(JobPhase::kCancelled,
                Status::Cancelled("service drained before the job started"));
  }
  AdmissionController::RecordQueueDepth(queue_.depth());

  // Running jobs stop at their next cooperative boundary; continuous jobs
  // freeze into resumable checkpointed state instead of cancelling.
  for (const std::shared_ptr<TuningJob>& job : queue_.ClaimedJobs()) {
    job->RequestDrain();
  }
  queue_.WaitIdle();
  PublishGauges();
  return Status::Ok();
}

void TuningService::Resume() {
  if (shutdown_.load(std::memory_order_acquire)) return;
  draining_.store(false, std::memory_order_release);
}

void TuningService::Shutdown() {
  if (shutdown_.exchange(true)) {
    return;  // Idempotent; the first caller does the work.
  }
  Drain();
  queue_.Close();
  for (std::thread& t : runners_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace aimai
