#include "service/service.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "obs/obs.h"

namespace aimai {

TuningService::TuningService(ServiceOptions options)
    : options_(options),
      admission_(std::min(options.max_inflight_jobs, options.job_runners),
                 options.max_queued_jobs),
      queue_(JobQueue::Options{options.max_queued_jobs,
                               options.priority_aging_claims}),
      job_retry_(options.job_retry) {
  PlanCacheDomain::Options cache;
  cache.shards = options_.cache_shards;
  cache.shard_capacity = static_cast<size_t>(options_.cache_shard_capacity);
  domain_ = std::make_shared<PlanCacheDomain>(cache);

  const int threads =
      options_.threads > 0 ? options_.threads : ConfiguredThreads();
  if (threads > 1) pool_ = std::make_unique<ThreadPool>(threads);

  if (!options_.journal_dir.empty()) {
    CheckpointJournal::Options jopts;
    jopts.dir = options_.journal_dir;
    jopts.max_entries = options_.journal_max_entries;
    journal_ = std::make_unique<CheckpointJournal>(jopts);
  }
  if (options_.job_timeout_ms > 0 || options_.job_stall_timeout_ms > 0) {
    EnsureWatchdog();
  }
  if (options_.learning.enabled) {
    learning_ = std::make_unique<LearningLoop>(this, options_.learning);
  }

  // The runner fleet is the in-flight bound: each runner executes one job
  // at a time, so min(job_runners, max_inflight_jobs) runners enforce
  // max_inflight_jobs structurally.
  const int runners = std::min(options_.job_runners,
                               options_.max_inflight_jobs);
  runners_.reserve(static_cast<size_t>(runners));
  for (int i = 0; i < runners; ++i) {
    runners_.emplace_back([this] { RunnerLoop(); });
  }
}

void TuningService::EnsureWatchdog() {
  if (watchdog_ != nullptr) return;
  JobWatchdog::Options wopts;
  wopts.poll_ms = options_.watchdog_poll_ms;
  wopts.stall_timeout_ms = options_.job_stall_timeout_ms;
  watchdog_ = std::make_unique<JobWatchdog>(&queue_, wopts);
  watchdog_->Start();
}

StatusOr<std::unique_ptr<TuningService>> TuningService::Create(
    ServiceOptions options) {
  AIMAI_RETURN_IF_ERROR(options.Validate());
  return std::unique_ptr<TuningService>(new TuningService(options));
}

TuningService::~TuningService() { Shutdown(); }

StatusOr<Session*> TuningService::CreateSession(SessionOptions options) {
  AIMAI_RETURN_IF_ERROR(options.Validate());
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is shut down");
  }
  if (draining_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is draining");
  }
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (sessions_.size() >= static_cast<size_t>(options_.max_sessions)) {
    return Status::ResourceExhausted("session limit reached");
  }
  for (const auto& s : sessions_) {
    if (s->name() == options.name) {
      return Status::InvalidArgument("session name '" + options.name +
                                     "' is already registered");
    }
  }
  // A per-tenant deadline override needs the watchdog even when the
  // service-wide default leaves it off.
  if (options.job_timeout_ms > 0) EnsureWatchdog();
  sessions_.push_back(std::unique_ptr<Session>(
      new Session(this, std::move(options), domain_)));
  AIMAI_COUNTER_INC("service.sessions_created");
  return sessions_.back().get();
}

std::shared_ptr<TuningJob> TuningService::NewJob(JobType type,
                                                 Session* session) {
  auto job = std::make_shared<TuningJob>(
      next_job_id_.fetch_add(1, std::memory_order_relaxed), type, session,
      session->name(), session->priority());
  const int64_t session_override = session->options().job_timeout_ms;
  job->set_deadline_ms(session_override >= 0 ? session_override
                                             : options_.job_timeout_ms);
  job->set_max_attempts(std::max(1, options_.job_retry.max_attempts));
  job->set_on_terminal([this](const TuningJob& j, JobPhase terminal) {
    AccountTerminal(j, terminal);
  });
  return job;
}

std::shared_ptr<TuningJob> TuningService::NewRetrainJob(Session* session) {
  // Priority 0 sits below every session priority (>= 1): a retrain only
  // claims a runner no tuning job wants. Its lane carries a control-char
  // suffix no session name can contain, so it never serializes against
  // the tenant's own tuning jobs.
  auto job = std::make_shared<TuningJob>(
      next_job_id_.fetch_add(1, std::memory_order_relaxed), JobType::kRetrain,
      session, session->name() + kRetrainLaneSuffix(), /*priority=*/0);
  // No deadline and a single attempt: a retrain is cheap to re-trigger,
  // and retrying a cancelled one would race the barrier.
  job->set_deadline_ms(0);
  job->set_max_attempts(1);
  job->set_on_terminal([this](const TuningJob& j, JobPhase terminal) {
    AccountTerminal(j, terminal);
    if (learning_ != nullptr) learning_->OnRetrainTerminal(j, terminal);
  });
  return job;
}

Status TuningService::SubmitRetrain(std::shared_ptr<TuningJob> job) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is shut down");
  }
  if (draining_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is draining");
  }
  // No AdmitSubmit: shedding background retrains on queue depth would make
  // the learning loop's behavior depend on unrelated tenants' load. The
  // queue's own bound still applies.
  AIMAI_RETURN_IF_ERROR(queue_.Push(std::move(job)));
  AdmissionController::RecordQueueDepth(queue_.depth());
  return Status::Ok();
}

Status TuningService::Submit(std::shared_ptr<TuningJob> job) {
  if (shutdown_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is shut down");
  }
  if (draining_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("service is draining");
  }
  AIMAI_RETURN_IF_ERROR(
      admission_.AdmitSubmit(queue_.depth(), job->session_name()));
  AIMAI_RETURN_IF_ERROR(queue_.Push(std::move(job)));
  AdmissionController::RecordQueueDepth(queue_.depth());
  return Status::Ok();
}

void TuningService::RunnerLoop() {
  while (std::shared_ptr<TuningJob> job = queue_.Claim()) {
    AdmissionController::RecordQueueDepth(queue_.depth());
    admission_.JobStarted();
    const auto start = std::chrono::steady_clock::now();
    job->session()->RunJob(job.get());
    const auto elapsed = std::chrono::steady_clock::now() - start;
    AIMAI_HIST_RECORD(
        "service.job.ns",
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                .count()));
    admission_.JobFinished();

    if (job->phase() == JobPhase::kQueued) {
      // The attempt died to a timeout/crash and the session rearmed the
      // job: requeue it with accounted (virtual, never slept) backoff.
      // Push happens before Release so WaitIdle cannot observe an idle
      // instant while a retry is still pending.
      const double backoff = job_retry_.BackoffMs(job->attempt() - 1);
      AIMAI_HIST_RECORD("service.job.retry_backoff_ms", backoff);
      jobs_retried_.fetch_add(1, std::memory_order_relaxed);
      AIMAI_COUNTER_INC("service.jobs_retried");
      bool requeued = false;
      if (!draining_.load(std::memory_order_acquire)) {
        const Status pushed = queue_.Push(job);
        if (pushed.ok()) {
          requeued = true;
        } else {
          job->Finish(JobPhase::kFailed, pushed);
        }
      } else {
        job->Finish(JobPhase::kCancelled,
                    Status::Cancelled(
                        "service drained before the retry could run"));
      }
      if (!requeued) {
        AIMAI_COUNTER_INC("service.jobs_finished");
      }
      queue_.Release(job->session_name());
      PublishGauges();
      continue;
    }

    AIMAI_COUNTER_INC("service.jobs_finished");
    queue_.Release(job->session_name());
    PublishGauges();
  }
}

// Invoked from TuningJob::Finish (via the on_terminal hook) before the
// terminal phase is published, so Wait() returning implies the buckets
// below are current.
void TuningService::AccountTerminal(const TuningJob& job, JobPhase phase) {
  const int events = job.fault_events();
  if (events == 0) return;
  if (phase == JobPhase::kDone || phase == JobPhase::kCheckpointed) {
    faults_recovered_.fetch_add(events, std::memory_order_relaxed);
    AIMAI_COUNTER_ADD("service.faults.recovered", events);
  } else {
    faults_lost_.fetch_add(events, std::memory_order_relaxed);
    AIMAI_COUNTER_ADD("service.faults.lost", events);
  }
}

void TuningService::PublishGauges() {
  if (!obs::Enabled()) return;
  obs::Registry().GetGauge("service.cache.hit_rate")->Set(CacheHitRate());
  obs::Registry()
      .GetGauge("service.cache.size")
      ->Set(static_cast<double>(domain_->size()));
}

double TuningService::CacheHitRate() const {
  const int64_t lookups = domain_->num_lookups();
  if (lookups == 0) return 0.0;
  return static_cast<double>(domain_->num_hits()) /
         static_cast<double>(lookups);
}

int TuningService::num_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return static_cast<int>(sessions_.size());
}

Status TuningService::Drain() {
  draining_.store(true, std::memory_order_release);

  // Jobs still queued never started; cancel them where they stand. A
  // queued retry of a fault-killed attempt dies here — its fault events
  // land in the "lost" bucket so the chaos accounting still closes.
  for (const std::shared_ptr<TuningJob>& job : queue_.TakeQueued()) {
    job->Finish(JobPhase::kCancelled,
                Status::Cancelled("service drained before the job started"));
  }
  AdmissionController::RecordQueueDepth(queue_.depth());

  // Running jobs stop at their next cooperative boundary; continuous jobs
  // freeze into resumable checkpointed state instead of cancelling.
  const std::vector<std::shared_ptr<TuningJob>> running =
      queue_.ClaimedJobs();
  for (const std::shared_ptr<TuningJob>& job : running) {
    job->RequestDrain();
  }
  queue_.WaitIdle();

  // Persist what the drain froze: every checkpointed continuous job goes
  // into the crash-safe journal so a process death after this point
  // loses nothing.
  if (journal_ != nullptr) {
    for (const std::shared_ptr<TuningJob>& job : running) {
      if (job->phase() != JobPhase::kCheckpointed) continue;
      std::ostringstream payload;
      if (job->session()->WriteCheckpoint(*job, &payload).ok()) {
        (void)journal_->Append(payload.str(), options_.faults);
      }
    }
  }
  PublishGauges();
  return Status::Ok();
}

void TuningService::Resume() {
  if (shutdown_.load(std::memory_order_acquire)) return;
  draining_.store(false, std::memory_order_release);
}

void TuningService::Shutdown() {
  if (shutdown_.exchange(true)) {
    return;  // Idempotent; the first caller does the work.
  }
  Drain();
  {
    // Detach under the session lock (CreateSession may create the
    // watchdog lazily) and stop it outside.
    std::unique_ptr<JobWatchdog> watchdog;
    {
      std::lock_guard<std::mutex> lock(sessions_mu_);
      watchdog = std::move(watchdog_);
    }
    if (watchdog != nullptr) watchdog->Stop();
  }
  queue_.Close();
  for (std::thread& t : runners_) {
    if (t.joinable()) t.join();
  }
}

}  // namespace aimai
