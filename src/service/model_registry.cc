#include "service/model_registry.h"

#include <utility>

#include "obs/obs.h"

namespace aimai {

int ModelRegistry::Publish(const std::string& name,
                           std::shared_ptr<const Classifier> classifier,
                           PairFeaturizer featurizer) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  const int version = it == models_.end() ? 1 : it->second->version + 1;
  auto snapshot = std::make_shared<ModelSnapshot>(
      name, version, std::move(classifier), std::move(featurizer));
  if (it == models_.end()) {
    models_.emplace(name, std::move(snapshot));
    return version;
  }
  it->second = std::move(snapshot);  // Atomic swap: old readers keep theirs.
  num_swaps_.fetch_add(1, std::memory_order_relaxed);
  AIMAI_COUNTER_INC("service.model_swaps");
  return version;
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::Snapshot(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second;
}

StatusOr<std::shared_ptr<const ModelSnapshot>> ModelRegistry::Get(
    const std::string& name) const {
  std::shared_ptr<const ModelSnapshot> snapshot = Snapshot(name);
  if (snapshot == nullptr) {
    return Status::InvalidArgument("no model published under '" + name + "'");
  }
  return snapshot;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& kv : models_) names.push_back(kv.first);
  return names;
}

}  // namespace aimai
