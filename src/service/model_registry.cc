#include "service/model_registry.h"

#include <sstream>
#include <utility>

#include "models/labeler.h"
#include "obs/obs.h"

namespace aimai {

int ModelRegistry::PublishLocked(const std::string& name,
                                 std::shared_ptr<const Classifier> classifier,
                                 PairFeaturizer featurizer) {
  Entry& entry = models_[name];
  const int version = entry.current == nullptr ? 1 : entry.current->version + 1;
  auto snapshot = std::make_shared<ModelSnapshot>(
      name, version, std::move(classifier), std::move(featurizer));
  entry.previous = std::move(entry.current);
  entry.current = std::move(snapshot);
  entry.observations = 0;
  entry.regressions = 0;
  entry.tenant_windows.clear();
  if (version > 1) {
    num_swaps_.fetch_add(1, std::memory_order_relaxed);
    AIMAI_COUNTER_INC("service.model_swaps");
  }
  return version;
}

int ModelRegistry::Publish(const std::string& name,
                           std::shared_ptr<const Classifier> classifier,
                           PairFeaturizer featurizer) {
  std::lock_guard<std::mutex> lock(mu_);
  const int version =
      PublishLocked(name, std::move(classifier), std::move(featurizer));
  // Unvalidated publishes carry no holdout evidence, so the drift
  // auto-rollback stays disarmed; manual Rollback() still works.
  models_[name].validated = false;
  return version;
}

StatusOr<int> ModelRegistry::PublishValidated(
    const std::string& name, std::shared_ptr<const Classifier> classifier,
    PairFeaturizer featurizer, const Dataset& holdout, const PublishGate& gate,
    FaultInjector* faults) {
  AIMAI_SPAN("service.model.publish_validated");
  if (classifier == nullptr) {
    return Status::InvalidArgument("PublishValidated: classifier is null");
  }
  if (holdout.n() == 0) {
    return Status::InvalidArgument(
        "PublishValidated: holdout dataset is empty");
  }
  if (faults != nullptr && faults->ShouldFail(FaultPoint::kModelPublishFailure)) {
    publish_failures_.fetch_add(1, std::memory_order_relaxed);
    AIMAI_COUNTER_INC("service.model.publish_failures");
    return Status::Unavailable("injected model publish failure for '" + name +
                               "'");
  }

  // Holdout gate: the candidate must not miss too many true regressions —
  // the error class the whole pipeline exists to avoid — and must clear
  // the overall accuracy floor.
  int64_t correct = 0;
  int64_t regressions = 0;
  int64_t missed_regressions = 0;
  for (size_t i = 0; i < holdout.n(); ++i) {
    const int truth = holdout.Label(i);
    const int pred = classifier->Predict(holdout.Row(i));
    if (pred == truth) ++correct;
    if (truth == static_cast<int>(PairLabel::kRegression)) {
      ++regressions;
      if (pred != truth) ++missed_regressions;
    }
  }
  const double accuracy =
      static_cast<double>(correct) / static_cast<double>(holdout.n());
  const double miss_rate =
      regressions == 0 ? 0.0
                       : static_cast<double>(missed_regressions) /
                             static_cast<double>(regressions);
  if (miss_rate > gate.max_regression_miss_rate || accuracy < gate.min_accuracy) {
    publish_rejections_.fetch_add(1, std::memory_order_relaxed);
    AIMAI_COUNTER_INC("service.model.publish_rejected");
    std::ostringstream msg;
    msg << "publish of '" << name << "' rejected by holdout gate: miss_rate="
        << miss_rate << " (max " << gate.max_regression_miss_rate
        << "), accuracy=" << accuracy << " (min " << gate.min_accuracy << ")";
    return Status::FailedPrecondition(msg.str());
  }

  std::lock_guard<std::mutex> lock(mu_);
  const int version =
      PublishLocked(name, std::move(classifier), std::move(featurizer));
  Entry& entry = models_[name];
  entry.validated = true;
  entry.gate = gate;
  return version;
}

Status ModelRegistry::RollbackLocked(const std::string& name) {
  auto it = models_.find(name);
  if (it == models_.end() || it->second.previous == nullptr) {
    return Status::FailedPrecondition("no prior version of '" + name +
                                      "' to roll back to");
  }
  std::shared_ptr<const ModelSnapshot> target = it->second.previous;
  PublishLocked(name, target->classifier, target->featurizer);
  Entry& entry = it->second;
  // The displaced (bad) version must not become a rollback target itself.
  entry.previous = nullptr;
  entry.validated = false;
  rollbacks_.fetch_add(1, std::memory_order_relaxed);
  AIMAI_COUNTER_INC("service.model.rollbacks");
  return Status::Ok();
}

Status ModelRegistry::Rollback(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return RollbackLocked(name);
}

void ModelRegistry::ReportOutcome(const std::string& name, int version,
                                  bool regressed) {
  ReportOutcome(name, version, std::string(), regressed);
}

void ModelRegistry::ReportOutcome(const std::string& name, int version,
                                  const std::string& tenant, bool regressed) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end() || it->second.current == nullptr) return;
  Entry& entry = it->second;
  if (entry.current->version != version) return;  // Stale: predates a swap.
  ++entry.observations;
  if (regressed) ++entry.regressions;
  if (!tenant.empty()) {
    DriftWindow& w = entry.tenant_windows[tenant];
    ++w.observations;
    if (regressed) ++w.regressions;
    if (obs::Enabled()) {
      const std::string prefix = "service.model.drift." + name + "." + tenant;
      obs::Registry()
          .GetGauge(prefix + ".observations")
          ->Set(static_cast<double>(w.observations));
      obs::Registry()
          .GetGauge(prefix + ".regressions")
          ->Set(static_cast<double>(w.regressions));
      obs::Registry().GetGauge(prefix + ".rate")->Set(w.rate());
    }
  }
  if (!entry.validated || entry.previous == nullptr) return;
  if (entry.observations < entry.gate.drift_min_observations) return;
  const double rate = static_cast<double>(entry.regressions) /
                      static_cast<double>(entry.observations);
  if (rate > entry.gate.drift_regression_rate) {
    // The validated publish drifted in production: sessions report more
    // regressions than the gate tolerates. Restore the prior snapshot.
    (void)RollbackLocked(name);
  }
}

ModelRegistry::DriftWindow ModelRegistry::GlobalDrift(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  DriftWindow w;
  if (it == models_.end()) return w;
  w.observations = it->second.observations;
  w.regressions = it->second.regressions;
  return w;
}

ModelRegistry::DriftWindow ModelRegistry::TenantDrift(
    const std::string& name, const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end()) return DriftWindow();
  auto wt = it->second.tenant_windows.find(tenant);
  return wt == it->second.tenant_windows.end() ? DriftWindow() : wt->second;
}

std::shared_ptr<const ModelSnapshot> ModelRegistry::Snapshot(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  return it == models_.end() ? nullptr : it->second.current;
}

StatusOr<std::shared_ptr<const ModelSnapshot>> ModelRegistry::Get(
    const std::string& name) const {
  std::shared_ptr<const ModelSnapshot> snapshot = Snapshot(name);
  if (snapshot == nullptr) {
    return Status::InvalidArgument("no model published under '" + name + "'");
  }
  return snapshot;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(models_.size());
  for (const auto& kv : models_) names.push_back(kv.first);
  return names;
}

}  // namespace aimai
