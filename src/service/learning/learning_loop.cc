#include "service/learning/learning_loop.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "ml/metrics.h"
#include "models/labeler.h"
#include "models/repository.h"
#include "obs/obs.h"
#include "service/service.h"
#include "service/session.h"

namespace aimai {

namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Holdout F1 of the regression class — the gate metric: the adapted
/// model must catch at least as many true regressions (without drowning
/// in false alarms) as the shared offline model does on this tenant.
double RegressionF1(const Classifier& classifier, const Dataset& holdout) {
  ConfusionMatrix cm(kNumPairLabels);
  for (size_t i = 0; i < holdout.n(); ++i) {
    cm.Add(holdout.Label(i), classifier.Predict(holdout.Row(i)));
  }
  return cm.ForClass(static_cast<int>(PairLabel::kRegression)).f1;
}

}  // namespace

Status LearningOptions::Validate() const {
  if (!enabled) return Status::Ok();
  if (feedback.capacity_per_tenant < 1) {
    return Status::InvalidArgument(
        "learning.feedback.capacity_per_tenant must be >= 1");
  }
  if (feedback.holdout_every < 2) {
    return Status::InvalidArgument(
        "learning.feedback.holdout_every must be >= 2");
  }
  if (feedback.holdout_capacity < 1) {
    return Status::InvalidArgument(
        "learning.feedback.holdout_capacity must be >= 1");
  }
  if (drift.window < 1 || drift.min_observations < 1) {
    return Status::InvalidArgument(
        "learning.drift window/min_observations must be >= 1");
  }
  if (drift.min_f1 < 0 || drift.min_f1 > 1 || drift.max_miss_rate < 0 ||
      drift.max_miss_rate > 1) {
    return Status::InvalidArgument(
        "learning.drift rates must be in [0, 1]");
  }
  if (retrain_after < 0) {
    return Status::InvalidArgument("learning.retrain_after must be >= 0");
  }
  if (min_train_rows < 1 || min_holdout_rows < 1) {
    return Status::InvalidArgument(
        "learning.min_train_rows/min_holdout_rows must be >= 1");
  }
  if (max_pair_partners < 1) {
    return Status::InvalidArgument(
        "learning.max_pair_partners must be >= 1");
  }
  return Status::Ok();
}

std::string AdaptedModelName(const std::string& base,
                             const std::string& tenant) {
  return base + "\x1e" + tenant;
}

void LearningLoop::DecisionLog::OnDecision(uint64_t h1, uint64_t h2,
                                           int label) {
  std::lock_guard<std::mutex> lock(mu_);
  const Key key{h1, h2};
  auto it = labels_.find(key);
  if (it != labels_.end()) {
    it->second = label;  // A fresh comparator may re-decide the pair.
    return;
  }
  labels_.emplace(key, label);
  fifo_.push_back(key);
  while (labels_.size() > kCapacity) {
    labels_.erase(fifo_.front());
    fifo_.pop_front();
  }
}

int LearningLoop::DecisionLog::Lookup(uint64_t h1, uint64_t h2) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = labels_.find(Key{h1, h2});
  return it == labels_.end() ? -1 : it->second;
}

LearningLoop::LearningLoop(TuningService* service, LearningOptions options)
    : service_(service),
      options_(options),
      feedback_([&options] {
        FeedbackStore::Options f = options.feedback;
        f.seed = f.seed ^ options.seed;
        return f;
      }()),
      drift_(options.drift) {}

LearningLoop::TenantState* LearningLoop::StateFor(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.emplace(tenant, std::make_unique<TenantState>()).first;
  }
  return it->second.get();
}

ComparatorDecisionSink* LearningLoop::SinkFor(const std::string& tenant) {
  return &StateFor(tenant)->log;
}

std::shared_ptr<const ModelSnapshot> LearningLoop::ResolveModel(
    const std::string& base, const std::string& tenant) const {
  std::shared_ptr<const ModelSnapshot> adapted =
      service_->models().Snapshot(AdaptedModelName(base, tenant));
  if (adapted != nullptr) return adapted;
  return service_->models().Snapshot(base);
}

void LearningLoop::BarrierFor(const std::string& tenant) {
  std::shared_ptr<TuningJob> job;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) return;
    job = it->second->inflight;
  }
  if (job == nullptr) return;
  AIMAI_SPAN("service.learning.retrain_barrier");
  // Steal a still-queued retrain and run it on this runner thread: the
  // tenant would have to wait for it anyway, and inlining makes the
  // barrier deadlock-free even when every runner is busy waiting.
  if (service_->queue_.ClaimSpecific(job)) {
    AIMAI_COUNTER_INC("service.learning.retrain_inline");
    job->session()->RunJob(job.get());
    service_->queue_.Release(job->session_name());
    AIMAI_COUNTER_INC("service.jobs_finished");
  }
  job->Wait();
}

void LearningLoop::Harvest(Session* session) {
  const std::string& model = session->options().model;
  if (model.empty()) return;
  AIMAI_SPAN("service.learning.harvest");
  const std::string& tenant = session->name();
  TenantState* ts = StateFor(tenant);
  ExecutionDataRepository* repo = session->repo();
  const size_t num_plans = repo->num_plans();
  if (ts->harvested_plans >= num_plans) return;

  std::shared_ptr<const ModelSnapshot> base =
      service_->models().Snapshot(model);
  if (base == nullptr) {  // Unpublished mid-run; skip this batch.
    ts->harvested_plans = num_plans;
    return;
  }
  // The live model — what the comparator actually consulted — supplies
  // the predicted label when the decision log has no record of the pair.
  std::shared_ptr<const ModelSnapshot> live = ResolveModel(model, tenant);
  PairDatasetBuilder builder(repo, base->featurizer, PairLabeler());

  int64_t harvested = 0;
  bool drifted = false;
  const auto add_pair = [&](int a, int b) {
    const ExecutedPlan& pa = repo->plan(a);
    const ExecutedPlan& pb = repo->plan(b);
    std::vector<double> x = builder.Features(PlanPairRef{a, b});
    const int truth = builder.labeler().Label(pa.exec_cost, pb.exec_cost);
    int predicted =
        ts->log.Lookup(pa.plan->ContentHash(), pb.plan->ContentHash());
    if (predicted < 0 && live != nullptr) {
      predicted = live->classifier->Predict(x.data());
    }
    feedback_.Add(tenant, std::move(x), truth, predicted);
    ++harvested;
    if (drift_.Record(tenant, truth, predicted)) drifted = true;
  };

  for (size_t p = ts->harvested_plans; p < num_plans; ++p) {
    const int pid = static_cast<int>(p);
    const std::vector<int>& members =
        repo->PlansOfQueryGroup(repo->QueryGroupOf(pid));
    // Pair the fresh plan with its query's most recent earlier plans,
    // both directions — the same ordered-pair universe MakePairs builds
    // offline, grown incrementally.
    int partners = 0;
    for (auto it = members.rbegin();
         it != members.rend() && partners < options_.max_pair_partners;
         ++it) {
      if (*it >= pid) continue;
      add_pair(*it, pid);
      add_pair(pid, *it);
      ++partners;
    }
  }
  ts->harvested_plans = num_plans;
  ts->rows_since_retrain += harvested;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ts->stats.rows_harvested += harvested;
    if (drifted) ++ts->stats.drift_triggers;
  }

  const bool count_trigger = options_.retrain_after > 0 &&
                             ts->rows_since_retrain >= options_.retrain_after;
  if (drifted || count_trigger) SubmitRetrain(session, ts);
}

void LearningLoop::SubmitRetrain(Session* session, TenantState* ts) {
  const std::string& tenant = session->name();
  if (feedback_.TrainSize(tenant) <
          static_cast<size_t>(options_.min_train_rows) ||
      feedback_.HoldoutSize(tenant) <
          static_cast<size_t>(options_.min_holdout_rows)) {
    return;  // Not enough evidence yet; a later harvest will re-trigger.
  }
  std::shared_ptr<TuningJob> job = service_->NewRetrainJob(session);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ts->inflight != nullptr) return;  // Coalesce concurrent triggers.
    // Armed before the push: the terminal hook may fire immediately.
    ts->inflight = job;
  }
  const Status pushed = service_->SubmitRetrain(job);
  if (!pushed.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    if (ts->inflight == job) ts->inflight = nullptr;
    AIMAI_COUNTER_INC("service.learning.retrain_rejected");
    return;
  }
  ts->rows_since_retrain = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++ts->stats.retrains_submitted;
  }
  AIMAI_COUNTER_INC("service.learning.retrains_submitted");
}

void LearningLoop::RunRetrainJob(Session* session, TuningJob* job,
                                 JobPhase* phase, Status* status) {
  AIMAI_SPAN("service.learning.retrain");
  const std::string& tenant = session->name();
  const std::string& base_name = session->options().model;
  TenantState* ts = StateFor(tenant);

  if (job->token()->cancelled()) {
    *phase = JobPhase::kCancelled;
    *status = Status::Cancelled("retrain cancelled before training");
    return;
  }
  std::shared_ptr<const ModelSnapshot> offline =
      service_->models().Snapshot(base_name);
  if (offline == nullptr) {
    *phase = JobPhase::kFailed;
    *status = Status::FailedPrecondition("base model '" + base_name +
                                         "' is not published");
    return;
  }
  const Dataset train = feedback_.TrainData(tenant);
  const Dataset holdout = feedback_.HoldoutData(tenant);
  if (train.n() < static_cast<size_t>(options_.min_train_rows) ||
      holdout.n() < static_cast<size_t>(options_.min_holdout_rows)) {
    // The trigger outran the store (eviction, feature-dim change). Not a
    // tenant fault; the loop re-arms on the next harvest.
    *phase = JobPhase::kDone;
    *status = Status::Ok();
    return;
  }

  int ordinal = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ordinal = ts->retrain_ordinal++;
  }
  const uint64_t seed =
      options_.seed ^ Fnv1a(tenant) ^
      (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(ordinal + 1));
  std::shared_ptr<AdaptedPairClassifier> adapted;
  {
    AIMAI_SPAN("service.learning.retrain_fit");
    adapted = std::make_shared<AdaptedPairClassifier>(options_.strategy,
                                                      offline, train, seed);
  }
  if (job->token()->cancelled()) {
    *phase = JobPhase::kCancelled;
    *status = Status::Cancelled("retrain cancelled after training");
    return;
  }

  const double offline_f1 = RegressionF1(*offline->classifier, holdout);
  const double adapted_f1 = RegressionF1(*adapted, holdout);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ts->stats.last_offline_f1 = offline_f1;
    ts->stats.last_adapted_f1 = adapted_f1;
  }
  if (obs::Enabled()) {
    obs::Registry()
        .GetGauge("service.learning.f1.offline." + tenant)
        ->Set(offline_f1);
    obs::Registry()
        .GetGauge("service.learning.f1.adapted." + tenant)
        ->Set(adapted_f1);
  }

  if (options_.require_f1_improvement && adapted_f1 < offline_f1) {
    std::lock_guard<std::mutex> lock(mu_);
    ++ts->stats.publish_skipped;
    AIMAI_COUNTER_INC("service.learning.publish_skipped");
    *phase = JobPhase::kDone;
    *status = Status::Ok();
    return;
  }

  AIMAI_SPAN("service.learning.publish");
  StatusOr<int> published = service_->models().PublishValidated(
      AdaptedModelName(base_name, tenant), adapted, offline->featurizer,
      holdout, options_.gate, service_->options_.faults);
  if (published.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++ts->stats.publishes;
      ts->stats.adapted_version = published.value();
    }
    AIMAI_COUNTER_INC("service.learning.publishes");
    // The new model must be judged on its own decisions, not the old
    // model's mistakes.
    drift_.Reset(tenant);
    *phase = JobPhase::kDone;
    *status = Status::Ok();
    return;
  }
  if (published.status().code() == StatusCode::kFailedPrecondition) {
    // The holdout gate refused the candidate: a successful retrain with
    // a negative publish decision, not a job failure.
    std::lock_guard<std::mutex> lock(mu_);
    ++ts->stats.publish_skipped;
    AIMAI_COUNTER_INC("service.learning.publish_skipped");
    *phase = JobPhase::kDone;
    *status = Status::Ok();
    return;
  }
  *phase = JobPhase::kFailed;
  *status = published.status();
}

void LearningLoop::OnRetrainTerminal(const TuningJob& job, JobPhase phase) {
  TenantState* ts = StateFor(job.session()->name());
  std::lock_guard<std::mutex> lock(mu_);
  if (ts->inflight != nullptr && ts->inflight.get() == &job) {
    ts->inflight = nullptr;
  }
  if (phase == JobPhase::kDone) {
    ++ts->stats.retrains_completed;
    AIMAI_COUNTER_INC("service.learning.retrains_completed");
  } else if (phase == JobPhase::kCancelled) {
    ++ts->stats.retrains_cancelled;
    AIMAI_COUNTER_INC("service.learning.retrains_cancelled");
  }
}

LearningLoop::TenantStats LearningLoop::StatsFor(
    const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantStats() : it->second->stats;
}

}  // namespace aimai
