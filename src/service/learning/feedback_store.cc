#include "service/learning/feedback_store.h"

#include <utility>

#include "common/check.h"
#include "obs/obs.h"

namespace aimai {

namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

FeedbackStore::FeedbackStore(Options options) : options_(options) {
  AIMAI_CHECK(options_.capacity_per_tenant > 0);
  AIMAI_CHECK(options_.holdout_every >= 2);
  AIMAI_CHECK(options_.holdout_capacity > 0);
}

FeedbackStore::TenantBuffer& FeedbackStore::BufferLocked(
    const std::string& tenant) {
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) {
    it = tenants_.emplace(tenant, TenantBuffer(options_.seed ^ Fnv1a(tenant)))
             .first;
  }
  return it->second;
}

bool FeedbackStore::Add(const std::string& tenant, std::vector<double> x,
                        int truth, int predicted) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantBuffer& buf = BufferLocked(tenant);
  if (buf.dim == 0) buf.dim = x.size();
  if (x.size() != buf.dim || x.empty()) {
    ++total_dropped_;
    AIMAI_COUNTER_INC("service.learning.rows_dropped");
    return false;
  }
  ++total_added_;
  AIMAI_COUNTER_INC("service.learning.rows_harvested");
  const int64_t seq = buf.seen++;
  Row row;
  row.x = std::move(x);
  row.truth = truth;
  row.predicted = predicted;

  if (seq % options_.holdout_every == 0) {
    buf.holdout.push_back(std::move(row));
    if (buf.holdout.size() > options_.holdout_capacity) {
      buf.holdout.pop_front();
      ++buf.evicted;
      ++total_evicted_;
      AIMAI_COUNTER_INC("service.learning.rows_evicted");
    }
    AIMAI_COUNTER_INC("service.learning.holdout_rows");
    return true;
  }

  // Algorithm R: once the reservoir is full, the new row replaces a
  // uniformly random slot with probability capacity / rows-seen-so-far.
  const int64_t offered = buf.train_seen++;
  if (buf.train.size() < options_.capacity_per_tenant) {
    buf.train.push_back(std::move(row));
    return false;
  }
  const int64_t j = buf.rng.UniformInt(0, offered);
  if (j < static_cast<int64_t>(options_.capacity_per_tenant)) {
    buf.train[static_cast<size_t>(j)] = std::move(row);
  }
  ++buf.evicted;
  ++total_evicted_;
  AIMAI_COUNTER_INC("service.learning.rows_evicted");
  return false;
}

Dataset FeedbackStore::TrainData(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.dim == 0) return Dataset();
  Dataset out(it->second.dim);
  for (const Row& r : it->second.train) out.Add(r.x, r.truth);
  return out;
}

Dataset FeedbackStore::HoldoutData(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end() || it->second.dim == 0) return Dataset();
  Dataset out(it->second.dim);
  for (const Row& r : it->second.holdout) out.Add(r.x, r.truth);
  return out;
}

size_t FeedbackStore::TrainSize(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.train.size();
}

size_t FeedbackStore::HoldoutSize(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.holdout.size();
}

int64_t FeedbackStore::RowsSeen(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.seen;
}

std::vector<std::string> FeedbackStore::Tenants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(tenants_.size());
  for (const auto& kv : tenants_) out.push_back(kv.first);
  return out;
}

int64_t FeedbackStore::total_added() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_added_;
}

int64_t FeedbackStore::total_evicted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_evicted_;
}

int64_t FeedbackStore::total_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_dropped_;
}

}  // namespace aimai
