#ifndef AIMAI_SERVICE_LEARNING_DRIFT_DETECTOR_H_
#define AIMAI_SERVICE_LEARNING_DRIFT_DETECTOR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

namespace aimai {

/// Per-tenant drift detection over the live model's decisions. Where the
/// ModelRegistry's outcome windows only watch the raw regression *rate*
/// (and roll a bad publish back), this detector compares the model's
/// *predictions* against the ground truth the measured executions later
/// revealed, maintains a rolling regression-class F1 and
/// regression-miss-rate window per tenant, and decides when the live
/// model has drifted far enough that a retrain is warranted — the trigger
/// side of the loop, not just the rollback side.
///
/// Deterministic: Record is called from the tenant's serialized job
/// thread in harvest order, and a trigger clears the tenant's window so
/// it must refill to min_observations before it can fire again (a
/// built-in cooldown that needs no wall clock).
class DriftDetector {
 public:
  struct Options {
    /// Rolling window length per tenant.
    int window = 64;
    /// Observations required before the window's verdict is trusted.
    int min_observations = 24;
    /// Trigger when the regression-class F1 drops below this.
    double min_f1 = 0.5;
    /// Trigger when the fraction of true regressions the model missed
    /// exceeds this (the paper's expensive error class).
    double max_miss_rate = 0.5;
  };

  struct Window {
    int64_t observations = 0;
    int64_t regressions = 0;        // True regressions in the window.
    int64_t missed_regressions = 0; // Of those, predicted as something else.
    double f1 = 0.0;                // Regression-class F1 over the window.
    double miss_rate = 0.0;
  };

  explicit DriftDetector(Options options);

  DriftDetector(const DriftDetector&) = delete;
  DriftDetector& operator=(const DriftDetector&) = delete;

  /// Records one (truth, predicted) pair-label outcome for `tenant`;
  /// returns true when the tenant's window crossed a drift bar (the
  /// window is then cleared). `predicted` < 0 (unknown) is ignored.
  bool Record(const std::string& tenant, int truth, int predicted);

  Window Snapshot(const std::string& tenant) const;

  /// Clears the tenant's window (called after an adapted publish: the
  /// old model's mistakes must not indict the new one).
  void Reset(const std::string& tenant);

  int64_t triggers() const;

 private:
  struct TenantWindow {
    std::deque<std::pair<int8_t, int8_t>> events;  // (truth, predicted).
  };

  static Window Summarize(const TenantWindow& w);
  void PublishGauges(const std::string& tenant, const Window& w) const;

  const Options options_;
  mutable std::mutex mu_;
  std::map<std::string, TenantWindow> tenants_;
  int64_t triggers_ = 0;
};

}  // namespace aimai

#endif  // AIMAI_SERVICE_LEARNING_DRIFT_DETECTOR_H_
