#ifndef AIMAI_SERVICE_LEARNING_LEARNING_OPTIONS_H_
#define AIMAI_SERVICE_LEARNING_LEARNING_OPTIONS_H_

#include <cstdint>

#include "common/status.h"
#include "service/learning/adapted_model.h"
#include "service/learning/drift_detector.h"
#include "service/learning/feedback_store.h"
#include "service/model_registry.h"

namespace aimai {

/// Configuration of the service's online learning loop (disabled by
/// default). When enabled, every session with a registry model harvests
/// labeled plan-pair rows from its measured continuous-tuning iterations
/// into the FeedbackStore, the DriftDetector watches the live model's
/// decisions against the measured truth, and drift (or a row-count
/// trigger) schedules a background kRetrain job that publishes a
/// tenant-adapted model through PublishValidated.
struct LearningOptions {
  bool enabled = false;
  FeedbackStore::Options feedback;
  DriftDetector::Options drift;
  /// §4.3 strategy the retrain builds over offline + harvested data.
  AdaptiveKind strategy = AdaptiveKind::kUncertainty;
  /// Also retrain every N harvested rows (0 = drift-triggered only).
  int retrain_after = 0;
  /// Harvested train rows required before a retrain is attempted.
  int min_train_rows = 16;
  /// Holdout rows required before the publish gate is meaningful.
  int min_holdout_rows = 4;
  /// Each newly measured plan is paired (both directions) with up to this
  /// many of the most recent earlier plans of the same query instance.
  int max_pair_partners = 3;
  /// Publish only when the adapted model's regression-class F1 on the
  /// tenant holdout is at least the offline model's.
  bool require_f1_improvement = true;
  /// Holdout gate handed to PublishValidated for adapted models.
  PublishGate gate;
  /// Seed of the retrain forests and the feedback reservoir (combined
  /// with the tenant name and retrain ordinal, so every tenant's loop is
  /// independently deterministic).
  uint64_t seed = 17;

  LearningOptions& WithEnabled(bool b) {
    enabled = b;
    return *this;
  }
  LearningOptions& WithFeedback(const FeedbackStore::Options& f) {
    feedback = f;
    return *this;
  }
  LearningOptions& WithDrift(const DriftDetector::Options& d) {
    drift = d;
    return *this;
  }
  LearningOptions& WithStrategy(AdaptiveKind k) {
    strategy = k;
    return *this;
  }
  LearningOptions& WithRetrainAfter(int n) {
    retrain_after = n;
    return *this;
  }
  LearningOptions& WithMinTrainRows(int n) {
    min_train_rows = n;
    return *this;
  }
  LearningOptions& WithMinHoldoutRows(int n) {
    min_holdout_rows = n;
    return *this;
  }
  LearningOptions& WithMaxPairPartners(int n) {
    max_pair_partners = n;
    return *this;
  }
  LearningOptions& WithRequireF1Improvement(bool b) {
    require_f1_improvement = b;
    return *this;
  }
  LearningOptions& WithGate(const PublishGate& g) {
    gate = g;
    return *this;
  }
  LearningOptions& WithSeed(uint64_t s) {
    seed = s;
    return *this;
  }

  Status Validate() const;
};

}  // namespace aimai

#endif  // AIMAI_SERVICE_LEARNING_LEARNING_OPTIONS_H_
