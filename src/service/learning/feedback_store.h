#ifndef AIMAI_SERVICE_LEARNING_FEEDBACK_STORE_H_
#define AIMAI_SERVICE_LEARNING_FEEDBACK_STORE_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "ml/dataset.h"

namespace aimai {

/// Bounded, thread-safe store of labeled plan-pair feature rows harvested
/// from tenant sessions' measured executions (the paper's "leverage query
/// executions" signal, collected inside the service instead of offline).
///
/// Per-tenant namespacing: every tenant gets its own buffers, so one
/// tenant's harvest can never change what another tenant retrains on.
/// Rows are split deterministically into a *train* reservoir and a
/// *holdout* stream (every holdout_every-th row): the holdout never
/// trains, which is what makes the adapted-vs-offline comparison and the
/// PublishValidated gate honest.
///
/// Bounds: the train split is an Algorithm-R reservoir (uniform over the
/// tenant's history, evictions counted), the holdout is a bounded FIFO
/// (most recent rows win — drift shows up there first). Both are
/// deterministic given the per-tenant seed and add order; the service's
/// per-session job serialization makes the add order itself deterministic.
class FeedbackStore {
 public:
  struct Options {
    /// Train-reservoir rows kept per tenant.
    size_t capacity_per_tenant = 512;
    /// Every Nth labeled row goes to the holdout split (>= 2).
    int holdout_every = 5;
    /// Holdout rows kept per tenant (FIFO of the most recent).
    size_t holdout_capacity = 256;
    /// Base seed of the per-tenant reservoir RNGs.
    uint64_t seed = 17;
  };

  /// One harvested observation: the pair feature vector, the ground-truth
  /// label from measured execution costs, and the label the live model
  /// predicted when the tuner made the decision (-1 = unknown).
  struct Row {
    std::vector<double> x;
    int truth = 0;
    int predicted = -1;
  };

  explicit FeedbackStore(Options options);

  FeedbackStore(const FeedbackStore&) = delete;
  FeedbackStore& operator=(const FeedbackStore&) = delete;

  /// Adds one labeled row under `tenant`; returns true when the row went
  /// to the holdout split. Rows whose dimensionality disagrees with the
  /// tenant's first row are dropped (counted) — they would corrupt the
  /// feature matrix after a mid-run featurizer change.
  bool Add(const std::string& tenant, std::vector<double> x, int truth,
           int predicted);

  /// Snapshot of the tenant's train reservoir as an ML dataset.
  Dataset TrainData(const std::string& tenant) const;
  /// Snapshot of the tenant's holdout split.
  Dataset HoldoutData(const std::string& tenant) const;

  size_t TrainSize(const std::string& tenant) const;
  size_t HoldoutSize(const std::string& tenant) const;

  /// Labeled rows ever accepted for `tenant` (pre-eviction).
  int64_t RowsSeen(const std::string& tenant) const;

  std::vector<std::string> Tenants() const;

  int64_t total_added() const;
  int64_t total_evicted() const;
  int64_t total_dropped() const;

 private:
  struct TenantBuffer {
    explicit TenantBuffer(uint64_t seed) : rng(seed) {}
    std::vector<Row> train;    // Reservoir (unordered once full).
    std::deque<Row> holdout;   // FIFO of the most recent holdout rows.
    size_t dim = 0;            // Fixed by the first accepted row.
    int64_t seen = 0;          // Accepted rows (train + holdout).
    int64_t train_seen = 0;    // Rows offered to the reservoir.
    int64_t evicted = 0;
    Rng rng;
  };

  TenantBuffer& BufferLocked(const std::string& tenant);

  const Options options_;
  mutable std::mutex mu_;
  std::map<std::string, TenantBuffer> tenants_;
  int64_t total_added_ = 0;
  int64_t total_evicted_ = 0;
  int64_t total_dropped_ = 0;
};

}  // namespace aimai

#endif  // AIMAI_SERVICE_LEARNING_FEEDBACK_STORE_H_
