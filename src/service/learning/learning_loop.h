#ifndef AIMAI_SERVICE_LEARNING_LEARNING_LOOP_H_
#define AIMAI_SERVICE_LEARNING_LEARNING_LOOP_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "service/job_queue.h"
#include "service/learning/drift_detector.h"
#include "service/learning/feedback_store.h"
#include "service/learning/learning_options.h"
#include "service/model_registry.h"
#include "tuner/comparator.h"

namespace aimai {

class TuningService;
class Session;

/// Queue-lane suffix of retrain jobs: tenant names reject control
/// characters, so "<tenant>\x1eretrain" can never collide with a real
/// session lane — retrains run concurrently with (and never serialize
/// against) the tenant's own tuning jobs.
inline const char* kRetrainLaneSuffix() { return "\x1eretrain"; }

/// Registry name an adapted model is published under: the base model name
/// plus a tenant suffix no user-supplied model name can contain. Each
/// session resolves its adapted name first and falls back to the shared
/// base model, which is what lets one tenant pin an adapted version while
/// every other tenant keeps the offline model.
std::string AdaptedModelName(const std::string& base,
                             const std::string& tenant);

/// The train-on-executions loop (paper §4.3 at service scale), owned by
/// TuningService when ServiceOptions::learning.enabled:
///
///   harvest   Session::RunContinuousJob passes an AdaptHook; after each
///             iteration's measurement lands in the tenant repo, Harvest
///             pairs the new plan with recent plans of the same query,
///             labels the pairs from measured costs (PairLabeler), joins
///             the live model's predicted label from the comparator
///             decision log, and feeds FeedbackStore + DriftDetector.
///   retrain   A drift trigger (or retrain_after rows) submits a
///             JobType::kRetrain job on the tenant's retrain lane at
///             priority 0 — background work that never starves tuning
///             jobs, is cancellable, and dies cleanly under drain.
///   publish   The retrain trains an AdaptedPairClassifier over the
///             harvested train split, gates it against the shared offline
///             model on the tenant holdout (F1 of the regression class),
///             and publishes through ModelRegistry::PublishValidated
///             under the tenant-adapted name.
///   pickup    Session::MakeComparator calls BarrierFor first: an
///             in-flight retrain finishes (stolen inline if still
///             queued) before the comparator snapshots, so the iteration
///             at which the adapted model takes over is deterministic
///             for any runner/thread count.
///
/// Determinism: harvest runs on the tenant's serialized job thread in
/// repo order, reservoir eviction and forest training are seeded, and
/// the barrier pins the publish/pickup interleaving — the whole loop is
/// bit-identical across runs and thread counts under a fixed seed.
class LearningLoop {
 public:
  struct TenantStats {
    int64_t rows_harvested = 0;
    int64_t drift_triggers = 0;
    int64_t retrains_submitted = 0;
    int64_t retrains_completed = 0;
    int64_t retrains_cancelled = 0;
    int64_t publishes = 0;
    int64_t publish_skipped = 0;
    int adapted_version = 0;       // 0 = never published.
    double last_offline_f1 = -1.0; // Holdout F1 at the last retrain.
    double last_adapted_f1 = -1.0;
  };

  LearningLoop(TuningService* service, LearningOptions options);

  LearningLoop(const LearningLoop&) = delete;
  LearningLoop& operator=(const LearningLoop&) = delete;

  const LearningOptions& options() const { return options_; }

  /// The comparator decision sink of `tenant` (stable address for the
  /// service lifetime; safe to hand to every comparator the session
  /// builds).
  ComparatorDecisionSink* SinkFor(const std::string& tenant);

  /// Model resolution for a session: the tenant-adapted snapshot when one
  /// is published, the shared base model otherwise.
  std::shared_ptr<const ModelSnapshot> ResolveModel(
      const std::string& base, const std::string& tenant) const;

  /// Blocks until the tenant's in-flight retrain (if any) is terminal. A
  /// retrain still sitting in the queue is claimed and run inline on the
  /// calling runner thread — deadlock-free even with one runner, and the
  /// pickup boundary never depends on background scheduling.
  void BarrierFor(const std::string& tenant);

  /// Harvest hook, called from the tenant's serialized job thread after
  /// each continuous iteration records its measurement. Feeds the store
  /// and the drift detector, and submits a retrain when triggered.
  void Harvest(Session* session);

  /// Retrain job body (Session::RunJob dispatches kRetrain here).
  void RunRetrainJob(Session* session, TuningJob* job, JobPhase* phase,
                     Status* status);

  /// Terminal hook for kRetrain jobs (clears the in-flight slot so later
  /// triggers can fire again even when the retrain was cancelled/shed).
  void OnRetrainTerminal(const TuningJob& job, JobPhase phase);

  TenantStats StatsFor(const std::string& tenant) const;

  FeedbackStore& feedback() { return feedback_; }
  DriftDetector& drift() { return drift_; }

 private:
  /// Bounded predicted-label log keyed by the pair's plan content hashes;
  /// written by comparator decisions, read back at harvest time.
  class DecisionLog : public ComparatorDecisionSink {
   public:
    void OnDecision(uint64_t h1, uint64_t h2, int label) override;
    /// -1 when the pair was never decided (or already evicted).
    int Lookup(uint64_t h1, uint64_t h2) const;

   private:
    using Key = std::pair<uint64_t, uint64_t>;
    struct KeyHash {
      size_t operator()(const Key& k) const {
        return static_cast<size_t>(k.first * 1099511628211ULL ^ k.second);
      }
    };
    static constexpr size_t kCapacity = 4096;
    mutable std::mutex mu_;
    std::unordered_map<Key, int, KeyHash> labels_;
    std::deque<Key> fifo_;
  };

  struct TenantState {
    /// Repo watermark: plans already harvested. Touched only by the
    /// tenant's serialized job thread.
    size_t harvested_plans = 0;
    int64_t rows_since_retrain = 0;
    /// Retrain count; salts the per-retrain training seed.
    int retrain_ordinal = 0;
    /// At most one in-flight retrain per tenant (guarded by mu_).
    std::shared_ptr<TuningJob> inflight;
    DecisionLog log;
    TenantStats stats;  // Guarded by mu_.
  };

  /// Stable per-tenant state (created on first use).
  TenantState* StateFor(const std::string& tenant);

  void SubmitRetrain(Session* session, TenantState* ts);

  TuningService* const service_;
  const LearningOptions options_;
  FeedbackStore feedback_;
  DriftDetector drift_;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<TenantState>> tenants_;
};

}  // namespace aimai

#endif  // AIMAI_SERVICE_LEARNING_LEARNING_LOOP_H_
