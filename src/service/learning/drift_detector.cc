#include "service/learning/drift_detector.h"

#include "common/check.h"
#include "models/labeler.h"
#include "obs/obs.h"

namespace aimai {

DriftDetector::DriftDetector(Options options) : options_(options) {
  AIMAI_CHECK(options_.window >= 1);
  AIMAI_CHECK(options_.min_observations >= 1);
}

DriftDetector::Window DriftDetector::Summarize(const TenantWindow& w) {
  int64_t tp = 0, fp = 0, fn = 0;
  for (const auto& [truth, predicted] : w.events) {
    const bool t = truth == static_cast<int8_t>(PairLabel::kRegression);
    const bool p = predicted == static_cast<int8_t>(PairLabel::kRegression);
    if (t && p) ++tp;
    if (!t && p) ++fp;
    if (t && !p) ++fn;
  }
  Window out;
  out.observations = static_cast<int64_t>(w.events.size());
  out.regressions = tp + fn;
  out.missed_regressions = fn;
  const double precision =
      tp + fp == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fp);
  const double recall =
      tp + fn == 0 ? 0.0 : static_cast<double>(tp) / static_cast<double>(tp + fn);
  out.f1 = precision + recall == 0
               ? 0.0
               : 2.0 * precision * recall / (precision + recall);
  out.miss_rate = tp + fn == 0
                      ? 0.0
                      : static_cast<double>(fn) / static_cast<double>(tp + fn);
  return out;
}

void DriftDetector::PublishGauges(const std::string& tenant,
                                  const Window& w) const {
  if (!obs::Enabled()) return;
  obs::Registry()
      .GetGauge("service.learning.drift.f1." + tenant)
      ->Set(w.f1);
  obs::Registry()
      .GetGauge("service.learning.drift.miss_rate." + tenant)
      ->Set(w.miss_rate);
  obs::Registry()
      .GetGauge("service.learning.drift.observations." + tenant)
      ->Set(static_cast<double>(w.observations));
}

bool DriftDetector::Record(const std::string& tenant, int truth,
                           int predicted) {
  if (predicted < 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  TenantWindow& w = tenants_[tenant];
  w.events.emplace_back(static_cast<int8_t>(truth),
                        static_cast<int8_t>(predicted));
  while (w.events.size() > static_cast<size_t>(options_.window)) {
    w.events.pop_front();
  }
  const Window summary = Summarize(w);
  PublishGauges(tenant, summary);
  if (summary.observations < options_.min_observations) return false;
  // Without true regressions in the window there is nothing to judge the
  // model's regression gate by — F1 of 0 would just mean "no support".
  if (summary.regressions == 0) return false;
  if (summary.f1 >= options_.min_f1 &&
      summary.miss_rate <= options_.max_miss_rate) {
    return false;
  }
  w.events.clear();  // Cooldown: the window must refill before refiring.
  ++triggers_;
  AIMAI_COUNTER_INC("service.learning.drift_triggers");
  return true;
}

DriftDetector::Window DriftDetector::Snapshot(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? Window() : Summarize(it->second);
}

void DriftDetector::Reset(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenants_.find(tenant);
  if (it != tenants_.end()) it->second.events.clear();
}

int64_t DriftDetector::triggers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return triggers_;
}

}  // namespace aimai
