#include "service/learning/adapted_model.h"

#include <algorithm>

#include "common/check.h"
#include "models/labeler.h"

namespace aimai {

const char* AdaptiveKindName(AdaptiveKind kind) {
  switch (kind) {
    case AdaptiveKind::kOffline:
      return "offline";
    case AdaptiveKind::kLocal:
      return "local";
    case AdaptiveKind::kUncertainty:
      return "uncertainty";
  }
  return "unknown";
}

StatusOr<AdaptiveKind> ParseAdaptiveKind(const std::string& name) {
  if (name == "offline") return AdaptiveKind::kOffline;
  if (name == "local") return AdaptiveKind::kLocal;
  if (name == "uncertainty") return AdaptiveKind::kUncertainty;
  return Status::InvalidArgument("unknown adaptive strategy '" + name +
                                 "' (offline|local|uncertainty)");
}

AdaptedPairClassifier::AdaptedPairClassifier(
    AdaptiveKind kind, std::shared_ptr<const ModelSnapshot> offline,
    const Dataset& local_train, uint64_t seed)
    : kind_(kind), offline_(std::move(offline)) {
  AIMAI_CHECK(offline_ != nullptr && offline_->classifier != nullptr);
  num_classes_ = offline_->classifier->num_classes();
  AIMAI_CHECK(num_classes_ >= kNumPairLabels);
  if (kind_ != AdaptiveKind::kOffline) {
    local_ = std::make_unique<LocalStrategy>(local_train, seed);
  }
}

void AdaptedPairClassifier::Fit(const Dataset& train) {
  (void)train;
  AIMAI_CHECK_MSG(false, "AdaptedPairClassifier is trained at construction");
}

void AdaptedPairClassifier::PredictProbaInto(const double* x,
                                             double* out) const {
  const size_t k = static_cast<size_t>(num_classes_);
  switch (kind_) {
    case AdaptiveKind::kOffline:
      offline_->classifier->PredictProbaInto(x, out);
      return;
    case AdaptiveKind::kLocal:
      local_->local_model()->PredictProbaInto(x, out);
      return;
    case AdaptiveKind::kUncertainty: {
      // The local forest may have seen fewer classes than the offline
      // model; pad its probability row with zeros so both rows compare
      // over the same label space.
      double off[kStackClasses] = {0};
      double loc[kStackClasses] = {0};
      AIMAI_CHECK(k <= kStackClasses);
      offline_->classifier->PredictProbaInto(x, off);
      const Classifier* lm = local_->local_model();
      lm->PredictProbaInto(x, loc);
      double u_off = 1.0, u_loc = 1.0;
      for (size_t c = 0; c < k; ++c) u_off = std::min(u_off, 1.0 - off[c]);
      for (size_t c = 0; c < static_cast<size_t>(lm->num_classes()); ++c) {
        u_loc = std::min(u_loc, 1.0 - loc[c]);
      }
      const double* pick = u_loc <= u_off ? loc : off;
      std::copy(pick, pick + k, out);
      return;
    }
  }
}

}  // namespace aimai
