#ifndef AIMAI_SERVICE_LEARNING_ADAPTED_MODEL_H_
#define AIMAI_SERVICE_LEARNING_ADAPTED_MODEL_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "ml/dataset.h"
#include "ml/model.h"
#include "models/adaptive.h"
#include "service/model_registry.h"

namespace aimai {

/// Which §4.3 adaptation strategy a tenant retrain builds.
enum class AdaptiveKind {
  kOffline,      // Shared offline model as-is (the Fig. 10 baseline).
  kLocal,        // Fresh forest over the tenant's harvested rows only.
  kUncertainty,  // Per-example: trust whichever model is more confident.
};

const char* AdaptiveKindName(AdaptiveKind kind);
StatusOr<AdaptiveKind> ParseAdaptiveKind(const std::string& name);

/// The paper's §4.3 adaptation packaged as a publishable Classifier: an
/// offline cross-database model (pinned through its registry snapshot so
/// a later rollback of the base entry can never dangle it) combined with
/// a fresh LocalStrategy forest trained on the tenant's harvested
/// execution feedback. Publishing one of these through the ModelRegistry
/// is what lets a session pin a tenant-adapted version while every other
/// session keeps the shared offline model.
///
/// Prediction semantics match models/adaptive.cc exactly:
///   kOffline      offline probabilities verbatim.
///   kLocal        local-forest probabilities verbatim.
///   kUncertainty  both models evaluated; the one with the lower
///                 uncertainty (1 - max probability) answers, local
///                 winning ties — argmax therefore equals
///                 UncertaintyStrategy::Predict bit for bit.
/// Training is deterministic given (local_train, seed); prediction is a
/// pure function, so the whole retrain->publish step replays identically.
class AdaptedPairClassifier : public Classifier {
 public:
  AdaptedPairClassifier(AdaptiveKind kind,
                        std::shared_ptr<const ModelSnapshot> offline,
                        const Dataset& local_train, uint64_t seed);

  /// Adapted models are trained at construction; Fit is not supported.
  void Fit(const Dataset& train) override;

  void PredictProbaInto(const double* x, double* out) const override;

  AdaptiveKind kind() const { return kind_; }
  const Classifier* local_model() const {
    return local_ == nullptr ? nullptr : local_->local_model();
  }

 private:
  const AdaptiveKind kind_;
  std::shared_ptr<const ModelSnapshot> offline_;
  std::unique_ptr<LocalStrategy> local_;
};

}  // namespace aimai

#endif  // AIMAI_SERVICE_LEARNING_ADAPTED_MODEL_H_
