#include "service/options.h"

namespace aimai {

Status ServiceOptions::Validate() const {
  if (threads < 0) return Status::InvalidArgument("threads must be >= 0");
  if (job_runners < 1) {
    return Status::InvalidArgument("job_runners must be >= 1");
  }
  if (max_inflight_jobs < 1) {
    return Status::InvalidArgument("max_inflight_jobs must be >= 1");
  }
  if (max_queued_jobs < 1) {
    return Status::InvalidArgument("max_queued_jobs must be >= 1");
  }
  if (max_sessions < 1) {
    return Status::InvalidArgument("max_sessions must be >= 1");
  }
  if (priority_aging_claims < 0) {
    return Status::InvalidArgument("priority_aging_claims must be >= 0");
  }
  if (cache_shards < 1) {
    return Status::InvalidArgument("cache_shards must be >= 1");
  }
  if (cache_shard_capacity < 1) {
    return Status::InvalidArgument("cache_shard_capacity must be >= 1");
  }
  if (job_timeout_ms < 0) {
    return Status::InvalidArgument("job_timeout_ms must be >= 0");
  }
  if (watchdog_poll_ms < 1) {
    return Status::InvalidArgument("watchdog_poll_ms must be >= 1");
  }
  if (job_stall_timeout_ms < 0) {
    return Status::InvalidArgument("job_stall_timeout_ms must be >= 0");
  }
  if (job_retry.max_attempts < 1) {
    return Status::InvalidArgument("job_retry.max_attempts must be >= 1");
  }
  if (session_breaker.failure_threshold < 1 ||
      session_breaker.cooldown_calls < 1 ||
      session_breaker.half_open_successes < 1) {
    return Status::InvalidArgument("session_breaker options must be >= 1");
  }
  if (journal_max_entries < 1) {
    return Status::InvalidArgument("journal_max_entries must be >= 1");
  }
  AIMAI_RETURN_IF_ERROR(learning.Validate());
  return Status::Ok();
}

Status SessionOptions::Validate() const {
  if (name.empty()) return Status::InvalidArgument("session name is empty");
  for (char c : name) {
    // The name becomes a cache-namespace prefix; control characters would
    // collide with the namespace/key separators.
    if (static_cast<unsigned char>(c) < 0x20) {
      return Status::InvalidArgument(
          "session name contains a control character");
    }
  }
  if (priority < 1) return Status::InvalidArgument("priority must be >= 1");
  if (env.db == nullptr || env.stats == nullptr || env.what_if == nullptr ||
      env.indexes == nullptr || env.executor == nullptr ||
      env.exec_cost == nullptr || env.noise_rng == nullptr) {
    return Status::InvalidArgument("session env is not fully wired");
  }
  if (env.cost_samples < 1) {
    return Status::InvalidArgument("cost_samples must be >= 1");
  }
  if (max_new_indexes < 1) {
    return Status::InvalidArgument("max_new_indexes must be >= 1");
  }
  if (storage_budget_bytes < 0) {
    return Status::InvalidArgument("storage_budget_bytes must be >= 0");
  }
  if (iterations < 1) {
    return Status::InvalidArgument("iterations must be >= 1");
  }
  if (quarantine_after < 1) {
    return Status::InvalidArgument("quarantine_after must be >= 1");
  }
  if (comparator.improvement_threshold < 0 ||
      comparator.improvement_threshold >= 1) {
    return Status::InvalidArgument(
        "improvement_threshold must be in [0, 1)");
  }
  if (comparator.regression_threshold < 0) {
    return Status::InvalidArgument("regression_threshold must be >= 0");
  }
  if (job_timeout_ms < -1) {
    return Status::InvalidArgument(
        "job_timeout_ms must be -1 (inherit), 0 (off), or positive");
  }
  return Status::Ok();
}

}  // namespace aimai
