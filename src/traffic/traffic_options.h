#ifndef AIMAI_TRAFFIC_TRAFFIC_OPTIONS_H_
#define AIMAI_TRAFFIC_TRAFFIC_OPTIONS_H_

#include <cstdint>

#include "traffic/arrival.h"
#include "workloads/query_stream.h"

namespace aimai {

/// Configuration of one open-loop traffic run: how many tenant sessions,
/// what each one's arrival process and query stream look like, and the
/// SLO/substrate knobs of the TuningService underneath. Sessions are
/// *lightweight*: thousands of them multiplex over `databases` shared
/// BenchmarkDatabases and one shared service runtime — the traffic jobs
/// are pure what-if query tunings, which never execute queries or
/// materialize indexes, so tenants sharing a database cannot perturb one
/// another's results.
struct TrafficOptions {
  /// Concurrent open-loop tenant sessions.
  int sessions = 64;
  /// Simulated stream horizon per session, seconds.
  double duration_s = 2.0;
  /// Per-session arrival process (kind, base rate, spike shape).
  ArrivalSpec arrival;
  /// Latency SLO per job; a completed job slower than this (or a job the
  /// watchdog timed out) counts as an SLO miss. 0 disables SLO
  /// accounting.
  int64_t slo_ms = 250;
  /// When true (and slo_ms > 0) the SLO also becomes each job's hard
  /// deadline: the service watchdog escalates overdue attempts to
  /// kTimedOut instead of letting them run arbitrarily long.
  bool enforce_slo_deadline = true;
  /// Scheduling priority of the traffic sessions (>= 1).
  int priority = 1;
  /// Base seed: schedule, streams, and databases all derive from it.
  uint64_t seed = 42;
  /// Distinct shared databases, round-robined over sessions.
  int databases = 4;
  /// Query-stream family every database/stream is built from. The kind
  /// defaults to "synthetic" (resolved in TrafficEngine) and the spec's
  /// seed/db_name are derived per database from `seed`.
  QueryStreamSpec stream;
  /// Replay speed: wall seconds = simulated seconds / time_compression.
  /// 0 dispatches the whole schedule as fast as possible (max-pressure
  /// mode); 1 replays in real time. When dispatch falls behind schedule
  /// it bursts to catch up — open-loop arrivals never wait for
  /// completions.
  double time_compression = 0;
  /// Service substrate: runner fleet (also the in-flight bound) and the
  /// queue bound load is shed against.
  int runners = 8;
  int max_queued = 256;
  /// Greedy search depth per traffic tuning job (small keeps per-job cost
  /// bounded; these are interactive-grade jobs, not deep batch tunings).
  int max_new_indexes = 2;
  /// JobQueue anti-starvation knob (see ServiceOptions).
  int priority_aging_claims = 32;
  /// Record each completed job's recommendation key (config fingerprint +
  /// plan costs) in the report, in submission order — the bit-identity
  /// currency for closed-subset guards. Off by default: at 1k+ sessions
  /// the keys are pure overhead.
  bool capture_results = false;

  TrafficOptions& WithSessions(int n) {
    sessions = n;
    return *this;
  }
  TrafficOptions& WithDurationS(double s) {
    duration_s = s;
    return *this;
  }
  TrafficOptions& WithArrival(const ArrivalSpec& a) {
    arrival = a;
    return *this;
  }
  TrafficOptions& WithSloMs(int64_t ms) {
    slo_ms = ms;
    return *this;
  }
  TrafficOptions& WithEnforceSloDeadline(bool b) {
    enforce_slo_deadline = b;
    return *this;
  }
  TrafficOptions& WithPriority(int p) {
    priority = p;
    return *this;
  }
  TrafficOptions& WithSeed(uint64_t s) {
    seed = s;
    return *this;
  }
  TrafficOptions& WithDatabases(int n) {
    databases = n;
    return *this;
  }
  TrafficOptions& WithStream(const QueryStreamSpec& s) {
    stream = s;
    return *this;
  }
  TrafficOptions& WithTimeCompression(double c) {
    time_compression = c;
    return *this;
  }
  TrafficOptions& WithRunners(int n) {
    runners = n;
    return *this;
  }
  TrafficOptions& WithMaxQueued(int n) {
    max_queued = n;
    return *this;
  }
  TrafficOptions& WithMaxNewIndexes(int n) {
    max_new_indexes = n;
    return *this;
  }
  TrafficOptions& WithPriorityAgingClaims(int n) {
    priority_aging_claims = n;
    return *this;
  }
  TrafficOptions& WithCaptureResults(bool b) {
    capture_results = b;
    return *this;
  }

  Status Validate() const;
};

}  // namespace aimai

#endif  // AIMAI_TRAFFIC_TRAFFIC_OPTIONS_H_
