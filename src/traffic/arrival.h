#ifndef AIMAI_TRAFFIC_ARRIVAL_H_
#define AIMAI_TRAFFIC_ARRIVAL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace aimai {

/// The shapes of open-loop arrival processes the traffic engine drives:
/// arrivals are generated from the process alone — never from job
/// completions — which is what makes overload possible (a closed loop
/// self-throttles; production traffic does not).
enum class ArrivalKind {
  /// Homogeneous Poisson at a constant rate.
  kPoisson,
  /// Sinusoidal day/night modulation around the base rate.
  kDiurnal,
  /// Steady base rate with a multiplicative spike window (the overload
  /// phase the SLO machinery is judged under).
  kFlashCrowd,
};

const char* ArrivalKindName(ArrivalKind kind);
/// Parses "poisson" / "diurnal" / "flash" (CLI flag values).
StatusOr<ArrivalKind> ParseArrivalKind(const std::string& name);

/// Parameters of one session's arrival process. Fractions are of the
/// run's duration so the same spec scales to any horizon.
struct ArrivalSpec {
  ArrivalKind kind = ArrivalKind::kPoisson;
  /// Mean arrivals per second outside any modulation.
  double rate_per_sec = 1.0;
  /// Diurnal: modulation period and relative amplitude in [0, 1]
  /// (rate(t) = rate * (1 + amplitude * sin(2*pi*t / period))).
  double period_s = 60.0;
  double amplitude = 0.8;
  /// Flash crowd: spike window as fractions of the duration, and the
  /// rate multiplier inside it.
  double flash_start_frac = 0.5;
  double flash_duration_frac = 0.2;
  double flash_multiplier = 8.0;

  ArrivalSpec& WithKind(ArrivalKind k) {
    kind = k;
    return *this;
  }
  ArrivalSpec& WithRatePerSec(double r) {
    rate_per_sec = r;
    return *this;
  }
  ArrivalSpec& WithPeriodS(double p) {
    period_s = p;
    return *this;
  }
  ArrivalSpec& WithAmplitude(double a) {
    amplitude = a;
    return *this;
  }
  ArrivalSpec& WithFlash(double start_frac, double duration_frac,
                         double multiplier) {
    flash_start_frac = start_frac;
    flash_duration_frac = duration_frac;
    flash_multiplier = multiplier;
    return *this;
  }

  Status Validate() const;
};

/// A non-homogeneous arrival-rate function over [0, duration). Pure and
/// stateless: all randomness lives in GenerateArrivals' Rng, so the same
/// (spec, duration, seed) triple yields the same arrival times on any
/// machine and thread count.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  virtual ArrivalKind kind() const = 0;
  /// Instantaneous rate (arrivals/sec) at time `t_s`.
  virtual double RateAt(double t_s) const = 0;
  /// An upper bound on RateAt over the horizon (the thinning envelope).
  virtual double PeakRate() const = 0;
};

/// Builds the process for `spec` over a `duration_s` horizon (the flash
/// window is resolved against it). Validates the spec.
StatusOr<std::unique_ptr<ArrivalProcess>> MakeArrivalProcess(
    const ArrivalSpec& spec, double duration_s);

/// Samples the arrival times in [0, duration_s), sorted ascending, by
/// thinning a homogeneous Poisson process at PeakRate(): candidate gaps
/// are exponential at the peak rate and each candidate survives with
/// probability RateAt(t)/peak. Deterministic given the Rng's state.
std::vector<double> GenerateArrivals(const ArrivalProcess& process,
                                     double duration_s, Rng* rng);

}  // namespace aimai

#endif  // AIMAI_TRAFFIC_ARRIVAL_H_
