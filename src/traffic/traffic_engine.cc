#include "traffic/traffic_engine.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/string_util.h"

namespace aimai {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string SessionName(int i) { return "t" + std::to_string(i); }

/// Session-i stream seed: a golden-ratio multiple keeps neighboring
/// sessions' Mersenne Twister states decorrelated (seed ^ i would differ
/// in one low bit).
uint64_t SessionSeed(uint64_t base, int i) {
  return base ^ (0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(i + 1));
}

double PercentileMs(std::vector<double>* sorted_ms, double q) {
  if (sorted_ms->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_ms->size() - 1) + 0.5);
  return (*sorted_ms)[std::min(idx, sorted_ms->size() - 1)];
}

}  // namespace

Status TrafficOptions::Validate() const {
  if (sessions < 1) return Status::InvalidArgument("sessions must be >= 1");
  if (duration_s <= 0) {
    return Status::InvalidArgument("duration_s must be > 0");
  }
  AIMAI_RETURN_IF_ERROR(arrival.Validate());
  if (slo_ms < 0) return Status::InvalidArgument("slo_ms must be >= 0");
  if (priority < 1) return Status::InvalidArgument("priority must be >= 1");
  if (databases < 1) {
    return Status::InvalidArgument("databases must be >= 1");
  }
  if (time_compression < 0) {
    return Status::InvalidArgument("time_compression must be >= 0");
  }
  if (runners < 1) return Status::InvalidArgument("runners must be >= 1");
  if (max_queued < 1) {
    return Status::InvalidArgument("max_queued must be >= 1");
  }
  if (max_new_indexes < 1) {
    return Status::InvalidArgument("max_new_indexes must be >= 1");
  }
  if (priority_aging_claims < 0) {
    return Status::InvalidArgument("priority_aging_claims must be >= 0");
  }
  return Status::Ok();
}

double TrafficReport::SloMissRate() const {
  const int64_t outcomes = completed + timed_out;
  if (outcomes == 0) return 0.0;
  return static_cast<double>(slo_miss) / static_cast<double>(outcomes);
}

bool TrafficReport::AccountingBalanced() const {
  if (arrived != admitted + shed + rejected) return false;
  if (admitted != completed + timed_out + failed + cancelled) return false;
  int64_t t_arrived = 0, t_admitted = 0, t_shed = 0, t_rejected = 0;
  for (const auto& [name, t] : tenants) {
    if (t.arrived != t.admitted + t.shed + t.rejected) return false;
    if (t.admitted != t.completed + t.timed_out + t.failed + t.cancelled) {
      return false;
    }
    t_arrived += t.arrived;
    t_admitted += t.admitted;
    t_shed += t.shed;
    t_rejected += t.rejected;
  }
  if (t_arrived != arrived || t_admitted != admitted || t_shed != shed ||
      t_rejected != rejected) {
    return false;
  }
  return admission_matches;
}

TrafficEngine::TrafficEngine(TrafficOptions options)
    : options_(std::move(options)) {
  if (options_.stream.kind.empty()) options_.stream.kind = "synthetic";
}

Status TrafficEngine::EnsurePrepared() {
  if (!generators_.empty()) return Status::Ok();
  AIMAI_RETURN_IF_ERROR(options_.Validate());
  const int databases = std::min(options_.databases, options_.sessions);
  generators_.reserve(static_cast<size_t>(databases));
  for (int k = 0; k < databases; ++k) {
    QueryStreamSpec spec = options_.stream;
    spec.seed = options_.seed + static_cast<uint64_t>(k);
    if (spec.db_name.empty()) {
      spec.db_name = spec.kind + "_db" + std::to_string(k);
    } else {
      spec.db_name += std::to_string(k);
    }
    AIMAI_ASSIGN_OR_RETURN(auto gen, MakePreparedQueryStream(spec));
    generators_.push_back(std::move(gen));
  }
  return Status::Ok();
}

StatusOr<std::vector<TrafficEvent>> TrafficEngine::BuildSchedule() {
  if (schedule_built_) return schedule_;
  AIMAI_RETURN_IF_ERROR(EnsurePrepared());
  AIMAI_ASSIGN_OR_RETURN(
      auto process, MakeArrivalProcess(options_.arrival, options_.duration_s));

  std::vector<TrafficEvent> schedule;
  for (int i = 0; i < options_.sessions; ++i) {
    Rng rng(SessionSeed(options_.seed, i));
    const std::vector<double> arrivals =
        GenerateArrivals(*process, options_.duration_s, &rng);
    if (arrivals.empty()) continue;
    IQueryStreamGenerator* gen =
        generators_[static_cast<size_t>(i) % generators_.size()].get();
    AIMAI_ASSIGN_OR_RETURN(
        auto queries, gen->NextQueryBatch(static_cast<int>(arrivals.size())));
    AIMAI_CHECK(queries.size() == arrivals.size());
    for (size_t a = 0; a < arrivals.size(); ++a) {
      TrafficEvent event;
      event.t_s = arrivals[a];
      event.session = i;
      event.query = std::move(queries[a]);
      schedule.push_back(std::move(event));
    }
  }
  // Time-sorted dispatch order. Per-session order is preserved (each
  // session's arrival times are strictly increasing); cross-session ties
  // break by session id so the order is a pure function of the options.
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const TrafficEvent& a, const TrafficEvent& b) {
                     if (a.t_s != b.t_s) return a.t_s < b.t_s;
                     return a.session < b.session;
                   });
  schedule_ = std::move(schedule);
  schedule_built_ = true;
  return schedule_;
}

StatusOr<TrafficReport> TrafficEngine::Run() {
  AIMAI_ASSIGN_OR_RETURN(auto schedule, BuildSchedule());

  ServiceOptions sopts;
  sopts.job_runners = options_.runners;
  sopts.max_inflight_jobs = options_.runners;
  sopts.max_queued_jobs = options_.max_queued;
  sopts.max_sessions = options_.sessions + 1;
  sopts.priority_aging_claims = options_.priority_aging_claims;
  if (options_.enforce_slo_deadline && options_.slo_ms > 0) {
    sopts.job_timeout_ms = options_.slo_ms;
    sopts.watchdog_poll_ms = 5;
  }
  // An SLO-timed-out traffic job is dead load: retrying it would spend
  // scarce overload capacity on work whose deadline already passed.
  sopts.job_retry.max_attempts = 1;
  AIMAI_ASSIGN_OR_RETURN(auto service, TuningService::Create(sopts));

  std::vector<Session*> sessions;
  sessions.reserve(static_cast<size_t>(options_.sessions));
  std::vector<const Configuration*> base_configs(
      static_cast<size_t>(options_.sessions));
  for (int i = 0; i < options_.sessions; ++i) {
    const size_t k = static_cast<size_t>(i) % generators_.size();
    BenchmarkDatabase* bdb = generators_[k]->database();
    SessionOptions so;
    so.name = SessionName(i);
    so.priority = options_.priority;
    so.env = bdb->MakeEnv(static_cast<int>(k));
    so.max_new_indexes = options_.max_new_indexes;
    AIMAI_ASSIGN_OR_RETURN(Session * session,
                           service->CreateSession(std::move(so)));
    sessions.push_back(session);
    base_configs[static_cast<size_t>(i)] = &bdb->initial_config();
  }

  // The flash window (when the arrival process has one) buckets events
  // into steady vs. overload phases.
  double flash_lo = -1, flash_hi = -1;
  if (options_.arrival.kind == ArrivalKind::kFlashCrowd) {
    flash_lo = options_.arrival.flash_start_frac * options_.duration_s;
    flash_hi = flash_lo +
               options_.arrival.flash_duration_frac * options_.duration_s;
  }

  TrafficReport report;
  struct Pending {
    std::shared_ptr<TuningJob> job;
    int64_t submit_ms = 0;
    int session = 0;
    bool in_flash = false;
  };
  std::vector<Pending> pending;
  pending.reserve(schedule.size());

  // --- Open-loop dispatch: paced by the schedule, never by completions.
  const auto wall0 = std::chrono::steady_clock::now();
  for (const TrafficEvent& event : schedule) {
    if (options_.time_compression > 0) {
      const auto target =
          wall0 + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          event.t_s / options_.time_compression));
      // Behind schedule => no sleep: the backlog bursts out, exactly like
      // queued-up real traffic.
      std::this_thread::sleep_until(target);
    }
    const bool in_flash = flash_lo >= 0 && event.t_s >= flash_lo &&
                          event.t_s < flash_hi;
    TenantTraffic& tenant = report.tenants[SessionName(event.session)];
    TrafficPhaseStats& phase = in_flash ? report.flash : report.steady;
    ++report.arrived;
    ++tenant.arrived;
    ++phase.arrived;

    auto submitted = sessions[static_cast<size_t>(event.session)]->TuneQuery(
        event.query, *base_configs[static_cast<size_t>(event.session)]);
    if (submitted.ok()) {
      ++report.admitted;
      ++tenant.admitted;
      ++phase.admitted;
      Pending p;
      p.job = std::move(*submitted);
      p.submit_ms = NowMs();
      p.session = event.session;
      p.in_flash = in_flash;
      pending.push_back(std::move(p));
    } else if (submitted.status().code() == StatusCode::kResourceExhausted) {
      ++report.shed;
      ++tenant.shed;
      ++phase.shed;
    } else {
      ++report.rejected;
      ++tenant.rejected;
    }
  }

  // --- Settle: open-loop arrivals are done; wait out the backlog.
  for (const Pending& p : pending) p.job->Wait();
  report.wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  std::vector<double> latencies_ms;
  std::vector<double> steady_ms, flash_ms;
  latencies_ms.reserve(pending.size());
  for (const Pending& p : pending) {
    TenantTraffic& tenant = report.tenants[SessionName(p.session)];
    TrafficPhaseStats& phase = p.in_flash ? report.flash : report.steady;
    const JobPhase terminal = p.job->phase();
    switch (terminal) {
      case JobPhase::kDone: {
        ++report.completed;
        ++tenant.completed;
        ++phase.completed;
        const double ms =
            static_cast<double>(p.job->terminal_ms() - p.submit_ms);
        latencies_ms.push_back(ms);
        (p.in_flash ? flash_ms : steady_ms).push_back(ms);
        if (options_.slo_ms > 0 &&
            ms > static_cast<double>(options_.slo_ms)) {
          ++report.slo_miss;
          ++tenant.slo_miss;
          ++phase.slo_miss;
        }
        if (options_.capture_results) {
          const QueryTuningResult& r = p.job->outputs().query;
          std::string key = r.recommended.Fingerprint();
          if (r.base_plan != nullptr && r.final_plan != nullptr) {
            key += StrFormat("|%.17g|%.17g", r.base_plan->est_total_cost,
                             r.final_plan->est_total_cost);
          }
          report.result_keys.push_back(std::move(key));
        }
        break;
      }
      case JobPhase::kTimedOut:
        ++report.timed_out;
        ++tenant.timed_out;
        ++phase.timed_out;
        // A deadline escalation is an SLO miss by definition.
        ++report.slo_miss;
        ++tenant.slo_miss;
        ++phase.slo_miss;
        break;
      case JobPhase::kCancelled:
        ++report.cancelled;
        ++tenant.cancelled;
        break;
      default:
        ++report.failed;
        ++tenant.failed;
        break;
    }
  }

  std::sort(latencies_ms.begin(), latencies_ms.end());
  std::sort(steady_ms.begin(), steady_ms.end());
  std::sort(flash_ms.begin(), flash_ms.end());
  report.p50_ms = PercentileMs(&latencies_ms, 0.50);
  report.p99_ms = PercentileMs(&latencies_ms, 0.99);
  report.steady.p99_ms = PercentileMs(&steady_ms, 0.99);
  report.flash.p99_ms = PercentileMs(&flash_ms, 0.99);
  if (!latencies_ms.empty()) {
    double sum = 0;
    for (double ms : latencies_ms) sum += ms;
    report.mean_ms = sum / static_cast<double>(latencies_ms.size());
  }
  if (report.wall_s > 0) {
    report.jobs_per_sec =
        static_cast<double>(report.completed) / report.wall_s;
  }

  // Admission cross-check: the controller's per-tenant buckets must say
  // exactly what the engine observed at its submit call sites.
  for (const auto& [name, tenant] : report.tenants) {
    const AdmissionController::TenantCounts counts =
        service->admission().TenantStats(name);
    if (counts.admitted != tenant.admitted || counts.shed != tenant.shed) {
      report.admission_matches = false;
    }
  }

  service->Shutdown();
  return report;
}

}  // namespace aimai
