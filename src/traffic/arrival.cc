#include "traffic/arrival.h"

#include <cmath>

namespace aimai {

const char* ArrivalKindName(ArrivalKind kind) {
  switch (kind) {
    case ArrivalKind::kPoisson:
      return "poisson";
    case ArrivalKind::kDiurnal:
      return "diurnal";
    case ArrivalKind::kFlashCrowd:
      return "flash";
  }
  return "unknown";
}

StatusOr<ArrivalKind> ParseArrivalKind(const std::string& name) {
  if (name == "poisson") return ArrivalKind::kPoisson;
  if (name == "diurnal") return ArrivalKind::kDiurnal;
  if (name == "flash") return ArrivalKind::kFlashCrowd;
  return Status::InvalidArgument("unknown arrival kind: " + name +
                                 " (want poisson|diurnal|flash)");
}

Status ArrivalSpec::Validate() const {
  if (rate_per_sec <= 0) {
    return Status::InvalidArgument("arrival rate_per_sec must be > 0");
  }
  if (kind == ArrivalKind::kDiurnal) {
    if (period_s <= 0) {
      return Status::InvalidArgument("diurnal period_s must be > 0");
    }
    if (amplitude < 0 || amplitude > 1) {
      return Status::InvalidArgument("diurnal amplitude must be in [0, 1]");
    }
  }
  if (kind == ArrivalKind::kFlashCrowd) {
    if (flash_start_frac < 0 || flash_start_frac > 1 ||
        flash_duration_frac < 0 || flash_duration_frac > 1) {
      return Status::InvalidArgument(
          "flash window fractions must be in [0, 1]");
    }
    if (flash_multiplier < 1) {
      return Status::InvalidArgument("flash_multiplier must be >= 1");
    }
  }
  return Status::Ok();
}

namespace {

class PoissonProcess : public ArrivalProcess {
 public:
  explicit PoissonProcess(double rate) : rate_(rate) {}
  ArrivalKind kind() const override { return ArrivalKind::kPoisson; }
  double RateAt(double) const override { return rate_; }
  double PeakRate() const override { return rate_; }

 private:
  const double rate_;
};

class DiurnalProcess : public ArrivalProcess {
 public:
  DiurnalProcess(double rate, double period_s, double amplitude)
      : rate_(rate), period_s_(period_s), amplitude_(amplitude) {}
  ArrivalKind kind() const override { return ArrivalKind::kDiurnal; }
  double RateAt(double t_s) const override {
    return rate_ *
           (1.0 + amplitude_ * std::sin(2.0 * M_PI * t_s / period_s_));
  }
  double PeakRate() const override { return rate_ * (1.0 + amplitude_); }

 private:
  const double rate_;
  const double period_s_;
  const double amplitude_;
};

class FlashCrowdProcess : public ArrivalProcess {
 public:
  FlashCrowdProcess(double rate, double start_s, double end_s,
                    double multiplier)
      : rate_(rate), start_s_(start_s), end_s_(end_s),
        multiplier_(multiplier) {}
  ArrivalKind kind() const override { return ArrivalKind::kFlashCrowd; }
  double RateAt(double t_s) const override {
    return (t_s >= start_s_ && t_s < end_s_) ? rate_ * multiplier_ : rate_;
  }
  double PeakRate() const override { return rate_ * multiplier_; }

 private:
  const double rate_;
  const double start_s_;
  const double end_s_;
  const double multiplier_;
};

}  // namespace

StatusOr<std::unique_ptr<ArrivalProcess>> MakeArrivalProcess(
    const ArrivalSpec& spec, double duration_s) {
  AIMAI_RETURN_IF_ERROR(spec.Validate());
  if (duration_s <= 0) {
    return Status::InvalidArgument("arrival duration_s must be > 0");
  }
  switch (spec.kind) {
    case ArrivalKind::kPoisson:
      return std::unique_ptr<ArrivalProcess>(
          new PoissonProcess(spec.rate_per_sec));
    case ArrivalKind::kDiurnal:
      return std::unique_ptr<ArrivalProcess>(new DiurnalProcess(
          spec.rate_per_sec, spec.period_s, spec.amplitude));
    case ArrivalKind::kFlashCrowd: {
      const double start = spec.flash_start_frac * duration_s;
      const double end =
          start + spec.flash_duration_frac * duration_s;
      return std::unique_ptr<ArrivalProcess>(new FlashCrowdProcess(
          spec.rate_per_sec, start, end, spec.flash_multiplier));
    }
  }
  return Status::InvalidArgument("unhandled arrival kind");
}

std::vector<double> GenerateArrivals(const ArrivalProcess& process,
                                     double duration_s, Rng* rng) {
  std::vector<double> arrivals;
  const double peak = process.PeakRate();
  if (peak <= 0 || duration_s <= 0) return arrivals;
  double t = 0;
  for (;;) {
    // Exponential gap at the envelope rate; 1 - U keeps log() finite.
    t += -std::log(1.0 - rng->Uniform()) / peak;
    if (t >= duration_s) break;
    if (rng->Uniform() * peak <= process.RateAt(t)) arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace aimai
