#ifndef AIMAI_TRAFFIC_TRAFFIC_ENGINE_H_
#define AIMAI_TRAFFIC_TRAFFIC_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "service/service.h"
#include "traffic/traffic_options.h"

namespace aimai {

/// One scheduled arrival: at simulated time `t_s`, session `session`
/// submits `query`.
struct TrafficEvent {
  double t_s = 0;
  int session = 0;
  QuerySpec query;
};

/// Per-tenant open-loop accounting. The invariant every run must close:
///   arrived == admitted + shed + rejected
///   admitted == completed + timed_out + failed + cancelled
/// and the engine-side admitted/shed tallies must equal the admission
/// controller's per-tenant buckets exactly.
struct TenantTraffic {
  int64_t arrived = 0;
  int64_t admitted = 0;
  int64_t shed = 0;      // ResourceExhausted at submit (load shed).
  int64_t rejected = 0;  // Any other submit failure.
  int64_t completed = 0;
  int64_t timed_out = 0;
  int64_t failed = 0;
  int64_t cancelled = 0;
  int64_t slo_miss = 0;
};

/// Arrival/outcome tallies for one phase of the run (steady vs. the
/// flash-crowd spike window).
struct TrafficPhaseStats {
  int64_t arrived = 0;
  int64_t admitted = 0;
  int64_t shed = 0;
  int64_t completed = 0;
  int64_t timed_out = 0;
  int64_t slo_miss = 0;
  double p99_ms = 0;

  /// Misses / (completed + timed out); 0 when nothing finished.
  double SloMissRate() const {
    const int64_t outcomes = completed + timed_out;
    if (outcomes == 0) return 0.0;
    return static_cast<double>(slo_miss) / static_cast<double>(outcomes);
  }
};

/// The whole run's report.
struct TrafficReport {
  int64_t arrived = 0;
  int64_t admitted = 0;
  int64_t shed = 0;
  int64_t rejected = 0;
  int64_t completed = 0;
  int64_t timed_out = 0;
  int64_t failed = 0;
  int64_t cancelled = 0;
  int64_t slo_miss = 0;

  /// Wall-clock run time (dispatch start to last job terminal), seconds.
  double wall_s = 0;
  /// Completed jobs per wall-clock second.
  double jobs_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double mean_ms = 0;

  TrafficPhaseStats steady;
  TrafficPhaseStats flash;

  std::map<std::string, TenantTraffic> tenants;
  /// True when every engine-side tenant bucket equals the admission
  /// controller's (checked at the end of Run()).
  bool admission_matches = true;

  /// Recommendation keys of completed jobs in submission order (only when
  /// options.capture_results).
  std::vector<std::string> result_keys;

  /// Misses / (completed + timed out); 0 when nothing finished.
  double SloMissRate() const;

  /// The shed-accounting equation, globally and per tenant, including
  /// the admission controller cross-check.
  bool AccountingBalanced() const;
};

/// The open-loop traffic engine: builds a deterministic arrival schedule
/// (thousands of per-session Poisson/diurnal/flash streams, queries drawn
/// from the pluggable IQueryStreamGenerator registry), then replays it
/// against a TuningService — submitting SLO-deadlined query-tuning jobs
/// through per-tenant sessions, counting what admission sheds, and
/// reporting sustained jobs/sec and latency percentiles per phase.
///
/// Determinism: BuildSchedule() is a pure function of the options (the
/// per-session Rng streams split off the base seed), so two engines with
/// equal options produce byte-identical schedules on any machine and any
/// runner count. Outcome *timing* (latency, shed counts under pacing) is
/// load-dependent by design — only the schedule and, for closed subsets,
/// the per-job recommendations are bit-stable.
class TrafficEngine {
 public:
  explicit TrafficEngine(TrafficOptions options);

  const TrafficOptions& options() const { return options_; }

  /// Builds (once) the shared databases + query streams and the full
  /// time-sorted arrival schedule.
  StatusOr<std::vector<TrafficEvent>> BuildSchedule();

  /// Runs the schedule against a fresh TuningService and reports.
  StatusOr<TrafficReport> Run();

 private:
  Status EnsurePrepared();

  TrafficOptions options_;
  std::vector<std::unique_ptr<IQueryStreamGenerator>> generators_;
  std::vector<TrafficEvent> schedule_;
  bool schedule_built_ = false;
};

}  // namespace aimai

#endif  // AIMAI_TRAFFIC_TRAFFIC_ENGINE_H_
