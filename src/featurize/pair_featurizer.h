#ifndef AIMAI_FEATURIZE_PAIR_FEATURIZER_H_
#define AIMAI_FEATURIZE_PAIR_FEATURIZER_H_

#include <string>
#include <vector>

#include "featurize/plan_featurizer.h"

namespace aimai {

/// Combines two plans' channel features into the final classifier input
/// (paper §3.3). The combination mimics the label's mathematical form
/// (ExecCost(P2) - ExecCost(P1)) / ExecCost(P1), which empirically beats
/// plain concatenation. Appends two scalar features derived from the
/// optimizer's total plan costs (the paper also feeds the estimated plan
/// cost to the model).
class PairFeaturizer {
 public:
  /// Values with |x| above this are clipped (division-by-zero handling in
  /// pair_diff_ratio; commonly-used practice in ML pipelines).
  static constexpr double kClip = 1e4;

  PairFeaturizer(std::vector<Channel> channels, PairCombine mode)
      : plan_featurizer_(std::move(channels)), mode_(mode) {}

  /// Final feature vector for the ordered pair (p1, p2).
  std::vector<double> Featurize(const PhysicalPlan& p1,
                                const PhysicalPlan& p2) const;

  /// Combines already-extracted plan features (used when plan features are
  /// cached by the execution-data repository).
  std::vector<double> Combine(const PlanFeatures& f1,
                              const PlanFeatures& f2) const;

  /// Zero-alloc combine primitive: writes exactly `dim()` doubles into
  /// `out`. Batch callers point `out` into a preallocated row-major
  /// feature matrix so a whole round of pair combinations performs no heap
  /// allocation. Values are bit-identical to `Combine`.
  void CombineInto(const PlanFeatures& f1, const PlanFeatures& f2,
                   double* out) const;

  const PlanFeaturizer& plan_featurizer() const { return plan_featurizer_; }
  PairCombine mode() const { return mode_; }

  /// Output dimensionality (fixed across databases).
  size_t dim() const;

  /// Name of feature dimension `i` (diagnostics).
  std::string DimensionName(size_t i) const;

 private:
  PlanFeaturizer plan_featurizer_;
  PairCombine mode_;
};

}  // namespace aimai

#endif  // AIMAI_FEATURIZE_PAIR_FEATURIZER_H_
