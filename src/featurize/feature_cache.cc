#include "featurize/feature_cache.h"

#include "obs/obs.h"

namespace aimai {

std::shared_ptr<const std::vector<double>> PairFeatureCache::GetOrCompute(
    const PairFeaturizer& featurizer, const PhysicalPlan& p1,
    const PhysicalPlan& p2) {
  const Key key{p1.ContentHash(), p2.ContentHash()};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      num_hits_.fetch_add(1, std::memory_order_relaxed);
      AIMAI_COUNTER_INC("featurize.cache_hits");
      return it->second;
    }
  }
  // Combine outside the lock: the plan memo bounds tree walks to one per
  // distinct plan, and concurrent misses on the same pair produce
  // identical vectors anyway (featurization is a pure function of the
  // plans).
  const auto f1 = GetPlanFeatures(featurizer, p1);
  const auto f2 = GetPlanFeatures(featurizer, p2);
  auto features = std::make_shared<const std::vector<double>>(
      featurizer.Combine(*f1, *f2));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    num_hits_.fetch_add(1, std::memory_order_relaxed);
    AIMAI_COUNTER_INC("featurize.cache_hits");
    return it->second;
  }
  num_misses_.fetch_add(1, std::memory_order_relaxed);
  InsertLocked(key, features);
  return features;
}

std::shared_ptr<const PlanFeatures> PairFeatureCache::GetPlanFeatures(
    const PairFeaturizer& featurizer, const PhysicalPlan& plan) {
  const uint64_t h = plan.ContentHash();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plan_map_.find(h);
    if (it != plan_map_.end()) {
      num_plan_hits_.fetch_add(1, std::memory_order_relaxed);
      AIMAI_COUNTER_INC("featurize.plan_cache_hits");
      return it->second;
    }
  }
  // Featurize outside the lock (pure function of the plan; concurrent
  // misses compute identical features).
  auto features = std::make_shared<const PlanFeatures>(
      featurizer.plan_featurizer().Featurize(plan));
  std::lock_guard<std::mutex> lock(mu_);
  auto it = plan_map_.find(h);
  if (it != plan_map_.end()) {
    num_plan_hits_.fetch_add(1, std::memory_order_relaxed);
    AIMAI_COUNTER_INC("featurize.plan_cache_hits");
    return it->second;
  }
  num_plan_misses_.fetch_add(1, std::memory_order_relaxed);
  plan_map_.emplace(h, features);
  plan_fifo_.push_back(h);
  while (plan_map_.size() > capacity_) {
    plan_map_.erase(plan_fifo_.front());
    plan_fifo_.pop_front();
  }
  return features;
}

std::shared_ptr<const std::vector<double>> PairFeatureCache::Lookup(
    uint64_t h1, uint64_t h2) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(Key{h1, h2});
  return it == map_.end() ? nullptr : it->second;
}

void PairFeatureCache::Insert(
    uint64_t h1, uint64_t h2,
    std::shared_ptr<const std::vector<double>> features) {
  std::lock_guard<std::mutex> lock(mu_);
  InsertLocked(Key{h1, h2}, std::move(features));
}

void PairFeatureCache::InsertLocked(
    const Key& key, std::shared_ptr<const std::vector<double>> features) {
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second = std::move(features);
    return;
  }
  map_.emplace(key, std::move(features));
  fifo_.push_back(key);
  while (map_.size() > capacity_) {
    map_.erase(fifo_.front());
    fifo_.pop_front();
    num_evictions_.fetch_add(1, std::memory_order_relaxed);
    AIMAI_COUNTER_INC("featurize.cache_evictions");
  }
}

void PairFeatureCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  fifo_.clear();
  plan_map_.clear();
  plan_fifo_.clear();
}

size_t PairFeatureCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return map_.size();
}

}  // namespace aimai
