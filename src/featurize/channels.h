#ifndef AIMAI_FEATURIZE_CHANNELS_H_
#define AIMAI_FEATURIZE_CHANNELS_H_

#include <string>
#include <vector>

#include "exec/plan.h"

namespace aimai {

/// Feature channels (paper Table 1): different ways of assigning a weight
/// to a plan node. Each channel produces one fixed-dimension vector
/// indexed by operator key.
enum class Channel {
  kEstNodeCost,        // Optimizer's node cost (work done).
  kEstBytesProcessed,  // Bytes processed by the node (work done).
  kEstRows,            // Rows processed (work done).
  kEstBytes,           // Bytes output (work done).
  kLeafRowsWeighted,   // Leaf est-rows, height-weighted sum (structure).
  kLeafBytesWeighted,  // Leaf est-bytes, height-weighted sum (structure).
};

const char* ChannelName(Channel c);
constexpr int kNumChannels = 6;

/// How the two plans' channel vectors are combined into the final feature
/// vector for the classifier (paper §3.3).
enum class PairCombine {
  kConcat,             // [f1, f2] — baseline.
  kPairDiff,           // f2 - f1.
  kPairDiffRatio,      // (f2 - f1) / f1, clipped on division by zero.
  kPairDiffNormalized, // (f2 - f1) / sum(f1).
};

const char* PairCombineName(PairCombine m);

/// Operator key space: (PhysicalOperator) x (ExecutionMode) x
/// (Parallelism), fixed in advance (paper §3.2), enabling cross-database
/// learning with stable dimensionality.
constexpr int kOperatorKeySpace = kNumPhysOps * 2 * 2;

/// Key of a plan node: op * 4 + mode * 2 + parallel.
int OperatorKey(const PlanNode& node);

/// Human-readable key name, e.g. "HashJoin_Batch_Parallel".
std::string OperatorKeyName(int key);

}  // namespace aimai

#endif  // AIMAI_FEATURIZE_CHANNELS_H_
