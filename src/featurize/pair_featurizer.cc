#include "featurize/pair_featurizer.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "obs/obs.h"

namespace aimai {

namespace {

double ClipValue(double x) {
  if (std::isnan(x)) return 0;
  return Clamp(x, -PairFeaturizer::kClip, PairFeaturizer::kClip);
}

}  // namespace

void PairFeaturizer::CombineInto(const PlanFeatures& f1,
                                 const PlanFeatures& f2, double* out) const {
  AIMAI_COUNTER_INC("featurize.pair_combines");
  AIMAI_CHECK(f1.values.size() == f2.values.size());
  size_t k = 0;

  for (size_t c = 0; c < f1.values.size(); ++c) {
    const std::vector<double>& a = f1.values[c];
    const std::vector<double>& b = f2.values[c];
    AIMAI_CHECK(a.size() == b.size());
    switch (mode_) {
      case PairCombine::kConcat: {
        for (size_t i = 0; i < a.size(); ++i) out[k++] = a[i];
        for (size_t i = 0; i < b.size(); ++i) out[k++] = b[i];
        break;
      }
      case PairCombine::kPairDiff: {
        for (size_t i = 0; i < a.size(); ++i) {
          out[k++] = ClipValue(b[i] - a[i]);
        }
        break;
      }
      case PairCombine::kPairDiffRatio: {
        for (size_t i = 0; i < a.size(); ++i) {
          const double diff = b[i] - a[i];
          if (a[i] == 0) {
            // Division by zero: clip to the configured cap, signed.
            out[k++] = diff == 0 ? 0.0 : (diff > 0 ? kClip : -kClip);
          } else {
            out[k++] = ClipValue(diff / a[i]);
          }
        }
        break;
      }
      case PairCombine::kPairDiffNormalized: {
        double denom = 0;
        for (double v : a) denom += v;
        if (denom == 0) denom = 1;
        for (size_t i = 0; i < a.size(); ++i) {
          out[k++] = ClipValue((b[i] - a[i]) / denom);
        }
        break;
      }
    }
  }

  // Optimizer total-cost side features: normalized difference and the raw
  // cost magnitude (log-scaled).
  const double c1 = f1.est_total_cost;
  const double c2 = f2.est_total_cost;
  out[k++] = ClipValue((c2 - c1) / std::max(1e-6, c1));
  out[k++] = std::log1p(std::max(0.0, c1));
  AIMAI_CHECK(k == dim());
}

std::vector<double> PairFeaturizer::Combine(const PlanFeatures& f1,
                                            const PlanFeatures& f2) const {
  std::vector<double> out(dim());
  CombineInto(f1, f2, out.data());
  return out;
}

std::vector<double> PairFeaturizer::Featurize(const PhysicalPlan& p1,
                                              const PhysicalPlan& p2) const {
  AIMAI_SPAN("featurize.pair");
  return Combine(plan_featurizer_.Featurize(p1), plan_featurizer_.Featurize(p2));
}

size_t PairFeaturizer::dim() const {
  const size_t per_channel =
      mode_ == PairCombine::kConcat ? 2 * kOperatorKeySpace : kOperatorKeySpace;
  return plan_featurizer_.channels().size() * per_channel + 2;
}

std::string PairFeaturizer::DimensionName(size_t i) const {
  const size_t per_channel =
      mode_ == PairCombine::kConcat ? 2 * kOperatorKeySpace : kOperatorKeySpace;
  const size_t n_channel_dims = plan_featurizer_.channels().size() * per_channel;
  if (i >= n_channel_dims) {
    return i == n_channel_dims ? "EstTotalCostDiffNorm" : "EstTotalCostLog";
  }
  const size_t c = i / per_channel;
  size_t k = i % per_channel;
  std::string side;
  if (mode_ == PairCombine::kConcat) {
    side = k < static_cast<size_t>(kOperatorKeySpace) ? ":P1" : ":P2";
    k = k % kOperatorKeySpace;
  }
  return StrFormat("%s[%s]%s", ChannelName(plan_featurizer_.channels()[c]),
                   OperatorKeyName(static_cast<int>(k)).c_str(), side.c_str());
}

}  // namespace aimai
