#ifndef AIMAI_FEATURIZE_PLAN_FEATURIZER_H_
#define AIMAI_FEATURIZE_PLAN_FEATURIZER_H_

#include <vector>

#include "featurize/channels.h"

namespace aimai {

/// Channel vectors extracted from one plan: `values[c]` has dimension
/// `kOperatorKeySpace` for each requested channel c, plus the optimizer's
/// total estimated plan cost as a scalar side feature.
struct PlanFeatures {
  std::vector<std::vector<double>> values;  // One vector per channel.
  double est_total_cost = 0;
};

/// Flattens a plan tree into fixed-dimension channel vectors (paper §3.2).
///
/// For work-done channels, a node adds its est_* measure to its operator
/// key's slot. For the WeightedSum channels, leaves carry est rows/bytes
/// as weight, internal nodes sum their children's weight × height — so a
/// join-order change perturbs the vector even when the operator multiset
/// is unchanged. Only optimizer estimates are consulted: the featurization
/// is valid for never-executed hypothetical plans.
///
/// `FeaturizeInto` is the allocation-free fast path: all work-done
/// channels accumulate in a single pre-order walk (the operator key is
/// computed once per node instead of once per node per channel) and both
/// weighted channels share one recursion, writing into a caller-provided
/// contiguous SoA buffer. Per-channel accumulation order is unchanged, so
/// the produced vectors are bit-identical to the original per-channel
/// walks.
class PlanFeaturizer {
 public:
  explicit PlanFeaturizer(std::vector<Channel> channels)
      : channels_(std::move(channels)) {}

  const std::vector<Channel>& channels() const { return channels_; }

  /// Total SoA output size of FeaturizeInto, in doubles.
  size_t flat_dim() const {
    return channels_.size() * static_cast<size_t>(kOperatorKeySpace);
  }

  PlanFeatures Featurize(const PhysicalPlan& plan) const;

  /// Fast path: writes `flat_dim()` doubles into `out`, channel-major
  /// (block c holds channel c's kOperatorKeySpace slots). `out` must be
  /// zero-initialized by the caller.
  void FeaturizeInto(const PhysicalPlan& plan, double* out) const;

 private:
  std::vector<Channel> channels_;
};

}  // namespace aimai

#endif  // AIMAI_FEATURIZE_PLAN_FEATURIZER_H_
