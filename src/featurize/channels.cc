#include "featurize/channels.h"

#include "common/check.h"
#include "common/string_util.h"

namespace aimai {

const char* ChannelName(Channel c) {
  switch (c) {
    case Channel::kEstNodeCost:
      return "EstNodeCost";
    case Channel::kEstBytesProcessed:
      return "EstBytesProcessed";
    case Channel::kEstRows:
      return "EstRows";
    case Channel::kEstBytes:
      return "EstBytes";
    case Channel::kLeafRowsWeighted:
      return "LeafWeightEstRowsWeightedSum";
    case Channel::kLeafBytesWeighted:
      return "LeafWeightEstBytesWeightedSum";
  }
  return "?";
}

const char* PairCombineName(PairCombine m) {
  switch (m) {
    case PairCombine::kConcat:
      return "concat";
    case PairCombine::kPairDiff:
      return "pair_diff";
    case PairCombine::kPairDiffRatio:
      return "pair_diff_ratio";
    case PairCombine::kPairDiffNormalized:
      return "pair_diff_normalized";
  }
  return "?";
}

int OperatorKey(const PlanNode& node) {
  const int op = static_cast<int>(node.op);
  const int mode = node.mode == ExecMode::kBatch ? 1 : 0;
  const int par = node.parallel ? 1 : 0;
  const int key = op * 4 + mode * 2 + par;
  AIMAI_CHECK(key >= 0 && key < kOperatorKeySpace);
  return key;
}

std::string OperatorKeyName(int key) {
  const int op = key / 4;
  const int mode = (key / 2) % 2;
  const int par = key % 2;
  return StrFormat("%s_%s_%s", PhysOpName(static_cast<PhysOp>(op)),
                   mode ? "Batch" : "Row", par ? "Parallel" : "Serial");
}

}  // namespace aimai
