#include "featurize/plan_featurizer.h"

#include <algorithm>

#include "common/check.h"
#include "obs/obs.h"

namespace aimai {

namespace {

/// Recursive weight/height computation for the WeightedSum channels.
/// Returns (weight, height) of `node`; adds the node's value to `out`.
struct WeightHeight {
  double weight = 0;
  int height = 1;
};

WeightHeight AccumulateWeighted(const PlanNode& node, bool use_bytes,
                                std::vector<double>* out) {
  const int key = OperatorKey(node);
  if (node.children.empty()) {
    WeightHeight wh;
    wh.weight = use_bytes ? node.stats.est_bytes : node.stats.est_rows;
    wh.height = 1;
    (*out)[static_cast<size_t>(key)] += wh.weight;  // Leaf value: weight x 1.
    return wh;
  }
  WeightHeight wh;
  double value = 0;
  wh.height = 0;
  for (const auto& c : node.children) {
    const WeightHeight child = AccumulateWeighted(*c, use_bytes, out);
    wh.weight += child.weight;
    wh.height = std::max(wh.height, child.height);
    value += child.weight * static_cast<double>(child.height);
  }
  wh.height += 1;
  (*out)[static_cast<size_t>(key)] += value;
  return wh;
}

}  // namespace

PlanFeatures PlanFeaturizer::Featurize(const PhysicalPlan& plan) const {
  AIMAI_CHECK(plan.root != nullptr);
  AIMAI_COUNTER_INC("featurize.plan_featurizations");
  PlanFeatures out;
  out.est_total_cost = plan.est_total_cost;
  out.values.reserve(channels_.size());

  for (Channel c : channels_) {
    std::vector<double> vec(kOperatorKeySpace, 0.0);
    switch (c) {
      case Channel::kEstNodeCost:
        plan.root->Visit([&vec](const PlanNode& n) {
          vec[static_cast<size_t>(OperatorKey(n))] += n.stats.est_cost;
        });
        break;
      case Channel::kEstBytesProcessed:
        plan.root->Visit([&vec](const PlanNode& n) {
          vec[static_cast<size_t>(OperatorKey(n))] +=
              n.stats.est_bytes_processed;
        });
        break;
      case Channel::kEstRows:
        plan.root->Visit([&vec](const PlanNode& n) {
          vec[static_cast<size_t>(OperatorKey(n))] += n.stats.est_rows;
        });
        break;
      case Channel::kEstBytes:
        plan.root->Visit([&vec](const PlanNode& n) {
          vec[static_cast<size_t>(OperatorKey(n))] += n.stats.est_bytes;
        });
        break;
      case Channel::kLeafRowsWeighted:
        AccumulateWeighted(*plan.root, /*use_bytes=*/false, &vec);
        break;
      case Channel::kLeafBytesWeighted:
        AccumulateWeighted(*plan.root, /*use_bytes=*/true, &vec);
        break;
    }
    out.values.push_back(std::move(vec));
  }
  return out;
}

}  // namespace aimai
