#include "featurize/plan_featurizer.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "obs/obs.h"

namespace aimai {

namespace {

/// Recursive weight/height computation for the WeightedSum channels. One
/// recursion serves both channels (rows- and bytes-weighted): the two
/// accumulations are independent, so fusing them preserves each channel's
/// exact FP sequence. Either output may be null when not requested.
struct WeightHeight {
  double rows_weight = 0;
  double bytes_weight = 0;
  int height = 1;
};

WeightHeight AccumulateWeighted(const PlanNode& node, double* rows_out,
                                double* bytes_out) {
  const size_t key = static_cast<size_t>(OperatorKey(node));
  WeightHeight wh;
  if (node.children.empty()) {
    wh.rows_weight = node.stats.est_rows;
    wh.bytes_weight = node.stats.est_bytes;
    wh.height = 1;
    // Leaf value: weight x 1.
    if (rows_out != nullptr) rows_out[key] += wh.rows_weight;
    if (bytes_out != nullptr) bytes_out[key] += wh.bytes_weight;
    return wh;
  }
  double rows_value = 0;
  double bytes_value = 0;
  wh.height = 0;
  for (const auto& c : node.children) {
    const WeightHeight child = AccumulateWeighted(*c, rows_out, bytes_out);
    wh.rows_weight += child.rows_weight;
    wh.bytes_weight += child.bytes_weight;
    wh.height = std::max(wh.height, child.height);
    rows_value += child.rows_weight * static_cast<double>(child.height);
    bytes_value += child.bytes_weight * static_cast<double>(child.height);
  }
  wh.height += 1;
  if (rows_out != nullptr) rows_out[key] += rows_value;
  if (bytes_out != nullptr) bytes_out[key] += bytes_value;
  return wh;
}

}  // namespace

void PlanFeaturizer::FeaturizeInto(const PhysicalPlan& plan,
                                   double* out) const {
  AIMAI_CHECK(plan.root != nullptr);
  AIMAI_COUNTER_INC("featurize.plan_featurizations");
  const size_t nc = channels_.size();
  constexpr size_t kSpace = static_cast<size_t>(kOperatorKeySpace);

  // All work-done channels accumulate in one pre-order walk; the operator
  // key is computed once per node. Per-channel slot accumulation order is
  // identical to a dedicated per-channel walk.
  bool any_work_done = false;
  for (Channel c : channels_) {
    any_work_done |= c != Channel::kLeafRowsWeighted &&
                     c != Channel::kLeafBytesWeighted;
  }
  if (any_work_done) {
    plan.root->Visit([&](const PlanNode& n) {
      const size_t key = static_cast<size_t>(OperatorKey(n));
      double* slot = out + key;
      for (size_t c = 0; c < nc; ++c, slot += kSpace) {
        switch (channels_[c]) {
          case Channel::kEstNodeCost:
            *slot += n.stats.est_cost;
            break;
          case Channel::kEstBytesProcessed:
            *slot += n.stats.est_bytes_processed;
            break;
          case Channel::kEstRows:
            *slot += n.stats.est_rows;
            break;
          case Channel::kEstBytes:
            *slot += n.stats.est_bytes;
            break;
          case Channel::kLeafRowsWeighted:
          case Channel::kLeafBytesWeighted:
            break;  // Handled by the fused recursion below.
        }
      }
    });
  }

  // Both weighted channels share one recursion. Duplicate channel entries
  // (same channel listed twice) receive a copy of the first block.
  double* rows_block = nullptr;
  double* bytes_block = nullptr;
  for (size_t c = 0; c < nc; ++c) {
    double* block = out + c * kSpace;
    if (channels_[c] == Channel::kLeafRowsWeighted && rows_block == nullptr) {
      rows_block = block;
    }
    if (channels_[c] == Channel::kLeafBytesWeighted &&
        bytes_block == nullptr) {
      bytes_block = block;
    }
  }
  if (rows_block != nullptr || bytes_block != nullptr) {
    AccumulateWeighted(*plan.root, rows_block, bytes_block);
    for (size_t c = 0; c < nc; ++c) {
      double* block = out + c * kSpace;
      if (channels_[c] == Channel::kLeafRowsWeighted && block != rows_block) {
        std::memcpy(block, rows_block, kSpace * sizeof(double));
      }
      if (channels_[c] == Channel::kLeafBytesWeighted &&
          block != bytes_block) {
        std::memcpy(block, bytes_block, kSpace * sizeof(double));
      }
    }
  }
}

PlanFeatures PlanFeaturizer::Featurize(const PhysicalPlan& plan) const {
  PlanFeatures out;
  out.est_total_cost = plan.est_total_cost;
  std::vector<double> flat(flat_dim(), 0.0);
  FeaturizeInto(plan, flat.data());
  constexpr size_t kSpace = static_cast<size_t>(kOperatorKeySpace);
  out.values.reserve(channels_.size());
  for (size_t c = 0; c < channels_.size(); ++c) {
    out.values.emplace_back(flat.begin() + static_cast<ptrdiff_t>(c * kSpace),
                            flat.begin() +
                                static_cast<ptrdiff_t>((c + 1) * kSpace));
  }
  return out;
}

}  // namespace aimai
