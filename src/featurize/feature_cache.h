#ifndef AIMAI_FEATURIZE_FEATURE_CACHE_H_
#define AIMAI_FEATURIZE_FEATURE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "featurize/pair_featurizer.h"

namespace aimai {

/// Memo for pair featurization, keyed by the two plans' content
/// fingerprints (PhysicalPlan::ContentHash). The tuner compares the same
/// current plan against many candidates and revisits pairs across rounds;
/// featurization walks both plan trees per call, so the memo turns the
/// comparator's dominant cost into a hash probe. Mirrors the what-if plan
/// cache design: bounded FIFO eviction, `featurize.cache_hits` /
/// `featurize.cache_evictions` obs counters, and shared_ptr values so a
/// feature vector handed to a caller outlives eviction and Clear().
///
/// Thread-safe. A single mutex guards the map (feature vectors are small;
/// contention is far below the what-if optimizer's, which shards).
class PairFeatureCache {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 12;

  explicit PairFeatureCache(size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  PairFeatureCache(const PairFeatureCache&) = delete;
  PairFeatureCache& operator=(const PairFeatureCache&) = delete;

  /// Returns the cached feature vector for (p1, p2), featurizing on miss.
  /// The handle stays valid after eviction or Clear().
  ///
  /// Pair misses go through the plan-feature memo below, so each distinct
  /// plan's tree is walked at most once per round even when it appears in
  /// many pairs (the tuner compares one current plan against N candidates:
  /// N pair misses used to mean 2N tree walks; now it is N+1).
  std::shared_ptr<const std::vector<double>> GetOrCompute(
      const PairFeaturizer& featurizer, const PhysicalPlan& p1,
      const PhysicalPlan& p2);

  /// Plan-level memo: channel features for one plan, keyed by
  /// `PhysicalPlan::ContentHash`. Featurizes on miss; bounded FIFO like
  /// the pair map.
  std::shared_ptr<const PlanFeatures> GetPlanFeatures(
      const PairFeaturizer& featurizer, const PhysicalPlan& plan);

  int64_t num_plan_hits() const {
    return num_plan_hits_.load(std::memory_order_relaxed);
  }
  int64_t num_plan_misses() const {
    return num_plan_misses_.load(std::memory_order_relaxed);
  }

  /// Probe without computing (tests / diagnostics). Null on miss.
  std::shared_ptr<const std::vector<double>> Lookup(uint64_t h1,
                                                    uint64_t h2) const;

  /// Inserts (replaces) an entry, evicting FIFO beyond capacity.
  void Insert(uint64_t h1, uint64_t h2,
              std::shared_ptr<const std::vector<double>> features);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  int64_t num_hits() const {
    return num_hits_.load(std::memory_order_relaxed);
  }
  int64_t num_misses() const {
    return num_misses_.load(std::memory_order_relaxed);
  }
  int64_t num_evictions() const {
    return num_evictions_.load(std::memory_order_relaxed);
  }

 private:
  using Key = std::pair<uint64_t, uint64_t>;

  struct KeyHash {
    size_t operator()(const Key& k) const {
      // The parts are already FNV mixed; fold them asymmetrically so
      // (a, b) and (b, a) land in different buckets.
      return static_cast<size_t>(k.first * 1099511628211ULL ^ k.second);
    }
  };

  /// Caller must hold mu_.
  void InsertLocked(const Key& key,
                    std::shared_ptr<const std::vector<double>> features);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::unordered_map<Key, std::shared_ptr<const std::vector<double>>, KeyHash>
      map_;
  std::deque<Key> fifo_;  // insertion order, for bounded eviction.
  // Plan-feature memo (guarded by mu_ as well; values are tiny).
  std::unordered_map<uint64_t, std::shared_ptr<const PlanFeatures>> plan_map_;
  std::deque<uint64_t> plan_fifo_;
  std::atomic<int64_t> num_hits_{0};
  std::atomic<int64_t> num_misses_{0};
  std::atomic<int64_t> num_evictions_{0};
  std::atomic<int64_t> num_plan_hits_{0};
  std::atomic<int64_t> num_plan_misses_{0};
};

}  // namespace aimai

#endif  // AIMAI_FEATURIZE_FEATURE_CACHE_H_
