#ifndef AIMAI_CATALOG_DATABASE_H_
#define AIMAI_CATALOG_DATABASE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"

namespace aimai {

/// A named collection of tables. The `Database` owns the data; index
/// materialization and statistics live in higher layers (IndexManager,
/// StatisticsCatalog) so that hypothetical configurations never mutate it.
class Database {
 public:
  explicit Database(std::string name) : name_(std::move(name)) {}

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const std::string& name() const { return name_; }

  /// Creates a new empty table; returns its id.
  int AddTable(std::unique_ptr<Table> table);

  int num_tables() const { return static_cast<int>(tables_.size()); }
  const Table& table(int id) const { return *tables_[static_cast<size_t>(id)]; }
  Table* mutable_table(int id) { return tables_[static_cast<size_t>(id)].get(); }

  /// Returns table id by name, or -1.
  int FindTable(const std::string& name) const;

  /// Total data size (all tables).
  int64_t SizeBytes() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Table>> tables_;
  std::unordered_map<std::string, int> by_name_;
};

}  // namespace aimai

#endif  // AIMAI_CATALOG_DATABASE_H_
