#include "catalog/configuration.h"

#include "catalog/database.h"
#include "common/string_util.h"

namespace aimai {

bool Configuration::Add(const IndexDef& index) {
  return indexes_.emplace(index.CanonicalName(), index).second;
}

bool Configuration::Remove(const std::string& canonical_name) {
  return indexes_.erase(canonical_name) > 0;
}

bool Configuration::Contains(const std::string& canonical_name) const {
  return indexes_.find(canonical_name) != indexes_.end();
}

std::vector<IndexDef> Configuration::indexes() const {
  std::vector<IndexDef> out;
  out.reserve(indexes_.size());
  for (const auto& [name, def] : indexes_) out.push_back(def);
  return out;
}

std::vector<IndexDef> Configuration::IndexesOn(int table_id) const {
  std::vector<IndexDef> out;
  for (const auto& [name, def] : indexes_) {
    if (def.table_id == table_id) out.push_back(def);
  }
  return out;
}

int64_t Configuration::EstimateSizeBytes(const Database& db) const {
  int64_t bytes = 0;
  for (const auto& [name, def] : indexes_) bytes += def.EstimateSizeBytes(db);
  return bytes;
}

std::string Configuration::Fingerprint() const {
  std::vector<std::string> names;
  names.reserve(indexes_.size());
  for (const auto& [name, def] : indexes_) names.push_back(name);
  return StrJoin(names, "|");
}

Configuration Configuration::Union(const Configuration& other) const {
  Configuration out = *this;
  for (const auto& [name, def] : other.indexes_) out.Add(def);
  return out;
}

std::vector<IndexDef> Configuration::Difference(
    const Configuration& other) const {
  std::vector<IndexDef> out;
  for (const auto& [name, def] : indexes_) {
    if (!other.Contains(name)) out.push_back(def);
  }
  return out;
}

}  // namespace aimai
