#include "catalog/database.h"

#include "common/check.h"

namespace aimai {

int Database::AddTable(std::unique_ptr<Table> table) {
  AIMAI_CHECK(table != nullptr);
  const int id = static_cast<int>(tables_.size());
  AIMAI_CHECK_MSG(by_name_.find(table->name()) == by_name_.end(),
                  "duplicate table name");
  by_name_[table->name()] = id;
  tables_.push_back(std::move(table));
  return id;
}

int Database::FindTable(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return -1;
  return it->second;
}

int64_t Database::SizeBytes() const {
  int64_t bytes = 0;
  for (const auto& t : tables_) bytes += t->SizeBytes();
  return bytes;
}

}  // namespace aimai
