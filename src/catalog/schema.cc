#include "catalog/schema.h"

#include <algorithm>

#include "catalog/database.h"
#include "common/check.h"
#include "common/string_util.h"

namespace aimai {

std::string IndexDef::CanonicalName() const {
  if (is_columnstore) return StrFormat("%d:CS", table_id);
  std::vector<std::string> keys;
  keys.reserve(key_columns.size());
  for (int c : key_columns) keys.push_back(StrFormat("%d", c));
  std::vector<int> inc = include_columns;
  std::sort(inc.begin(), inc.end());
  std::vector<std::string> incs;
  incs.reserve(inc.size());
  for (int c : inc) incs.push_back(StrFormat("%d", c));
  std::string out = StrFormat("%d:(", table_id) + StrJoin(keys, ",") + ")";
  if (!incs.empty()) out += "+(" + StrJoin(incs, ",") + ")";
  return out;
}

std::string IndexDef::DisplayName(const Database& db) const {
  const Table& t = db.table(table_id);
  if (is_columnstore) return StrFormat("CSIX_%s", t.name().c_str());
  std::vector<std::string> keys;
  for (int c : key_columns) keys.push_back(t.column(static_cast<size_t>(c)).name());
  std::string out = StrFormat("IX_%s_", t.name().c_str()) + StrJoin(keys, "_");
  if (!include_columns.empty()) {
    std::vector<std::string> incs;
    for (int c : include_columns) {
      incs.push_back(t.column(static_cast<size_t>(c)).name());
    }
    out += "_inc_" + StrJoin(incs, "_");
  }
  return out;
}

int64_t IndexDef::EstimateSizeBytes(const Database& db) const {
  const Table& t = db.table(table_id);
  const int64_t rows = static_cast<int64_t>(t.num_rows());
  if (is_columnstore) {
    // Columnstore compresses well; model a flat 0.4 compression ratio.
    return static_cast<int64_t>(static_cast<double>(t.SizeBytes()) * 0.4);
  }
  int64_t row_bytes = 8;  // Row locator.
  for (int c : key_columns) {
    row_bytes += t.column(static_cast<size_t>(c)).width_bytes();
  }
  for (int c : include_columns) {
    row_bytes += t.column(static_cast<size_t>(c)).width_bytes();
  }
  // ~30% B+-tree structural overhead (internal nodes, fill factor).
  return static_cast<int64_t>(static_cast<double>(rows * row_bytes) * 1.3);
}

bool IndexDef::Covers(int col) const {
  if (is_columnstore) return true;
  if (std::find(key_columns.begin(), key_columns.end(), col) !=
      key_columns.end()) {
    return true;
  }
  return std::find(include_columns.begin(), include_columns.end(), col) !=
         include_columns.end();
}

}  // namespace aimai
