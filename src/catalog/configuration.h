#ifndef AIMAI_CATALOG_CONFIGURATION_H_
#define AIMAI_CATALOG_CONFIGURATION_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "catalog/schema.h"

namespace aimai {

/// An index configuration: a set of IndexDefs, deduplicated by canonical
/// name. Configurations are values — copying is cheap relative to their use
/// in tuner search, and equality / fingerprints enable caching of what-if
/// optimizer calls.
class Configuration {
 public:
  Configuration() = default;

  /// Adds an index; returns false if an identical index was present.
  bool Add(const IndexDef& index);

  /// Removes by canonical name; returns false if absent.
  bool Remove(const std::string& canonical_name);

  bool Contains(const std::string& canonical_name) const;

  size_t size() const { return indexes_.size(); }
  bool empty() const { return indexes_.empty(); }

  /// Iterates indexes in canonical-name order (deterministic).
  std::vector<IndexDef> indexes() const;

  /// Indexes restricted to a table.
  std::vector<IndexDef> IndexesOn(int table_id) const;

  /// Total estimated size of all indexes.
  int64_t EstimateSizeBytes(const Database& db) const;

  /// Stable fingerprint, usable as a cache key.
  std::string Fingerprint() const;

  /// Set union / difference (used by continuous tuning to compute deltas).
  Configuration Union(const Configuration& other) const;
  std::vector<IndexDef> Difference(const Configuration& other) const;

  /// Two configurations are equal iff they hold the same canonical names
  /// (names fully determine the indexes). Compares the ordered maps
  /// directly — no Fingerprint() strings are built, so equality on the
  /// tuner's hot paths costs zero allocations.
  bool operator==(const Configuration& other) const {
    if (indexes_.size() != other.indexes_.size()) return false;
    auto a = indexes_.begin();
    auto b = other.indexes_.begin();
    for (; a != indexes_.end(); ++a, ++b) {
      if (a->first != b->first) return false;
    }
    return true;
  }
  bool operator!=(const Configuration& other) const {
    return !(*this == other);
  }

 private:
  // canonical name -> def; map keeps deterministic ordering.
  std::map<std::string, IndexDef> indexes_;
};

}  // namespace aimai

#endif  // AIMAI_CATALOG_CONFIGURATION_H_
