#ifndef AIMAI_CATALOG_SCHEMA_H_
#define AIMAI_CATALOG_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aimai {

class Database;

/// A resolved reference to a column of a table in a database.
struct ColumnRef {
  int table_id = -1;
  int column_id = -1;

  bool operator==(const ColumnRef& o) const {
    return table_id == o.table_id && column_id == o.column_id;
  }
  bool operator<(const ColumnRef& o) const {
    if (table_id != o.table_id) return table_id < o.table_id;
    return column_id < o.column_id;
  }
};

/// Definition of a (hypothetical or materialized) index.
///
/// A row-store secondary index is a B+-tree on `key_columns` (in order)
/// with optional `include_columns` carried in the leaves (covering index).
/// A columnstore index (`is_columnstore`) covers all columns of the table
/// and enables batch-mode execution, mirroring SQL Server semantics at the
/// granularity the paper's featurization cares about.
struct IndexDef {
  int table_id = -1;
  std::vector<int> key_columns;
  std::vector<int> include_columns;
  bool is_columnstore = false;

  /// Canonical identity string, e.g. "2:(0,3)+(5)" or "2:CS". Two IndexDefs
  /// with the same canonical name are the same index.
  std::string CanonicalName() const;

  /// Human-readable name using real table/column names.
  std::string DisplayName(const Database& db) const;

  /// Estimated on-disk/in-memory size for storage budgets.
  int64_t EstimateSizeBytes(const Database& db) const;

  /// True if `col` appears in the key or the includes (or the index is a
  /// columnstore, which covers everything).
  bool Covers(int col) const;

  bool operator==(const IndexDef& o) const {
    return CanonicalName() == o.CanonicalName() && table_id == o.table_id;
  }
};

}  // namespace aimai

#endif  // AIMAI_CATALOG_SCHEMA_H_
