#include "workloads/query_stream.h"

#include <algorithm>
#include <cstdlib>
#include <mutex>

#include "common/check.h"
#include "common/thread_pool.h"
#include "workloads/customer.h"
#include "workloads/query_helpers.h"
#include "workloads/tpcds_like.h"
#include "workloads/tpch_like.h"
#include "workloads/tpch_sf.h"

namespace aimai {

namespace {

const char* SqlTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "BIGINT";
    case DataType::kDouble:
      return "DOUBLE PRECISION";
    case DataType::kString:
      return "VARCHAR";
  }
  return "BIGINT";
}

/// Derives the stream Rng seed from the spec seed. The salt decouples the
/// query stream from the data-generation draws (both start from
/// spec.seed), so adding data columns never perturbs the stream.
constexpr uint64_t kStreamSeedSalt = 0x9e3779b97f4a7c15ULL;

/// Shared base: database lifecycle (Prepare/GetDdl/TakeDatabase) and the
/// per-stream Rng. Subclasses implement the stream draw itself.
class StreamGeneratorBase : public IQueryStreamGenerator {
 public:
  using DbBuilder =
      std::function<std::unique_ptr<BenchmarkDatabase>(const QueryStreamSpec&)>;

  StreamGeneratorBase(QueryStreamSpec spec, DbBuilder builder)
      : spec_(std::move(spec)),
        builder_(std::move(builder)),
        stream_rng_(spec_.seed ^ kStreamSeedSalt) {}

  const std::string& kind() const override { return spec_.kind; }
  const QueryStreamSpec& spec() const override { return spec_; }

  std::string GetDdl() override {
    const Status st = PrepareInitialData();
    if (!st.ok()) return "-- " + st.ToString() + "\n";
    return SchemaDdl(*db_->db());
  }

  Status PrepareInitialData() override {
    if (db_ != nullptr) return Status::Ok();
    if (taken_) {
      return Status::FailedPrecondition(
          "query stream database already taken");
    }
    std::unique_ptr<BenchmarkDatabase> built = builder_(spec_);
    if (built == nullptr) {
      return Status::Internal("workload builder returned no database: " +
                              spec_.kind);
    }
    db_ = std::move(built);
    return Status::Ok();
  }

  BenchmarkDatabase* database() override { return db_.get(); }

  std::unique_ptr<BenchmarkDatabase> TakeDatabase() override {
    const Status st = PrepareInitialData();
    if (!st.ok()) return nullptr;
    taken_ = true;
    return std::move(db_);
  }

 protected:
  Status EnsureReady() {
    AIMAI_RETURN_IF_ERROR(PrepareInitialData());
    return Status::Ok();
  }

  QueryStreamSpec spec_;
  DbBuilder builder_;
  std::unique_ptr<BenchmarkDatabase> db_;
  Rng stream_rng_;
  bool taken_ = false;
};

/// Stream over a *closed* workload family (tpch, tpcds, customer,
/// tpch_sf): replays the family's built template instances in a seeded
/// shuffled cycle, reshuffling at each wrap, with stream-unique instance
/// names. Parameter constants repeat per cycle — matching how a
/// production app re-issues the same statement templates — while the
/// arrival *order* keeps varying.
class ReplayStreamGenerator : public StreamGeneratorBase {
 public:
  using StreamGeneratorBase::StreamGeneratorBase;

  StatusOr<std::vector<QuerySpec>> NextQueryBatch(int max_queries) override {
    if (max_queries <= 0) {
      return Status::InvalidArgument("max_queries must be positive");
    }
    AIMAI_RETURN_IF_ERROR(EnsureReady());
    const std::vector<QuerySpec>& templates = db_->queries();
    if (templates.empty()) {
      return Status::FailedPrecondition("workload has no query templates: " +
                                        spec_.kind);
    }
    if (order_.empty()) {
      order_.resize(templates.size());
      for (size_t i = 0; i < order_.size(); ++i) order_[i] = i;
      stream_rng_.Shuffle(&order_);
    }
    std::vector<QuerySpec> batch;
    batch.reserve(static_cast<size_t>(max_queries));
    for (int i = 0; i < max_queries; ++i) {
      QuerySpec q = templates[order_[cursor_++]];
      q.name += "~" + std::to_string(seq_++);
      batch.push_back(std::move(q));
      if (cursor_ == order_.size()) {
        cursor_ = 0;
        stream_rng_.Shuffle(&order_);
      }
    }
    return batch;
  }

 private:
  std::vector<size_t> order_;
  size_t cursor_ = 0;
  uint64_t seq_ = 0;
};

/// The open synthetic family: the database is a mid-size customer-profile
/// schema, but NextQueryBatch *instantiates brand-new single-table
/// queries forever* — fresh predicate columns, operators, and constants
/// every draw, never cycling. This is the drifting-workload stressor: no
/// finite template set describes the stream.
class SyntheticStreamGenerator : public StreamGeneratorBase {
 public:
  using StreamGeneratorBase::StreamGeneratorBase;

  StatusOr<std::vector<QuerySpec>> NextQueryBatch(int max_queries) override {
    if (max_queries <= 0) {
      return Status::InvalidArgument("max_queries must be positive");
    }
    AIMAI_RETURN_IF_ERROR(EnsureReady());
    std::vector<QuerySpec> batch;
    batch.reserve(static_cast<size_t>(max_queries));
    for (int i = 0; i < max_queries; ++i) batch.push_back(Synthesize());
    return batch;
  }

 private:
  QuerySpec Synthesize() {
    const Database& d = *db_->db();
    QuerySpec q;
    q.name = "syn~" + std::to_string(seq_++);
    const int t = static_cast<int>(
        stream_rng_.Index(static_cast<size_t>(d.num_tables())));
    q.tables = {t};
    const Table& table = d.table(t);

    const int n_preds = 1 + static_cast<int>(stream_rng_.Index(2));
    for (int p = 0; p < n_preds; ++p) {
      const int c = static_cast<int>(stream_rng_.Index(table.num_columns()));
      q.predicates.push_back(RandomPredicate(d, t, c));
    }

    // Numeric columns of the table (group/sum/order targets).
    std::vector<int> numeric;
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (table.column(c).type() != DataType::kString) {
        numeric.push_back(static_cast<int>(c));
      }
    }
    if (stream_rng_.Bernoulli(0.5)) {
      const int gcol =
          static_cast<int>(stream_rng_.Index(table.num_columns()));
      q.group_by = {ColumnRef{t, gcol}};
      q.aggregates = {{AggFunc::kCount, ColumnRef{}}};
      if (!numeric.empty()) {
        q.aggregates.push_back(
            {AggFunc::kSum,
             ColumnRef{t, numeric[stream_rng_.Index(numeric.size())]}});
      }
      q.order_by = {SortKey{ColumnRef{t, gcol}, true}};
    } else {
      for (size_t c = 0; c < table.num_columns() && q.select_columns.size() < 3;
           ++c) {
        q.select_columns.push_back(ColumnRef{t, static_cast<int>(c)});
      }
      if (!numeric.empty() && stream_rng_.Bernoulli(0.5)) {
        q.order_by = {
            SortKey{ColumnRef{t, numeric[stream_rng_.Index(numeric.size())]},
                    stream_rng_.Bernoulli(0.5)}};
        if (stream_rng_.Bernoulli(0.5)) q.top_n = stream_rng_.UniformInt(10, 200);
      }
    }
    return q;
  }

  Predicate RandomPredicate(const Database& d, int t, int c) {
    using workload_internal::PredBetween;
    using workload_internal::PredCmp;
    using workload_internal::PredEq;
    const Column& col = d.table(t).column(static_cast<size_t>(c));
    if (col.type() == DataType::kString) {
      return PredEq(t, c,
                    workload_internal::RowValue(d, t, c, &stream_rng_));
    }
    const double v =
        col.NumericAt(stream_rng_.Index(d.table(t).num_rows()));
    const double pick = stream_rng_.Uniform();
    if (col.type() == DataType::kInt64) {
      const int64_t iv = static_cast<int64_t>(v);
      if (pick < 0.35) return PredEq(t, c, Value::Int(iv));
      if (pick < 0.65) {
        return PredCmp(t, c,
                       stream_rng_.Bernoulli(0.5) ? CmpOp::kLe : CmpOp::kGe,
                       Value::Int(iv));
      }
      return PredBetween(t, c, Value::Int(iv),
                         Value::Int(iv + stream_rng_.UniformInt(1, 1000)));
    }
    if (pick < 0.5) {
      return PredCmp(t, c,
                     stream_rng_.Bernoulli(0.5) ? CmpOp::kLe : CmpOp::kGe,
                     Value::Real(v));
    }
    return PredBetween(t, c, Value::Real(v),
                       Value::Real(v * stream_rng_.Uniform(1.01, 2.0)));
  }

  uint64_t seq_ = 0;
};

/// The synthetic family's database profile: mid-size, moderately skewed,
/// with a handful of template queries kept so `database()->queries()` is
/// usable by closed-subset consumers too.
CustomerProfile SyntheticProfile() {
  CustomerProfile p;
  p.num_tables = 6;
  p.min_rows = 1000;
  p.max_rows = 15000;
  p.num_queries = 8;
  p.max_joins = 3;
  p.zipf_s = 0.7;
  return p;
}

void RegisterBuiltins(QueryStreamRegistry* reg) {
  auto check = [](Status st) { AIMAI_CHECK_MSG(st.ok(), st.message().c_str()); };
  check(reg->Register("tpch", [](const QueryStreamSpec& spec)
                                  -> StatusOr<std::unique_ptr<IQueryStreamGenerator>> {
    if (spec.scale < 1) {
      return Status::InvalidArgument("tpch scale must be >= 1");
    }
    return std::unique_ptr<IQueryStreamGenerator>(new ReplayStreamGenerator(
        spec, [](const QueryStreamSpec& s) {
          return BuildTpchLike(s.ResolvedDbName(), s.scale, 0.9, s.seed);
        }));
  }));
  check(reg->Register("tpcds", [](const QueryStreamSpec& spec)
                                   -> StatusOr<std::unique_ptr<IQueryStreamGenerator>> {
    if (spec.scale < 1) {
      return Status::InvalidArgument("tpcds scale must be >= 1");
    }
    return std::unique_ptr<IQueryStreamGenerator>(new ReplayStreamGenerator(
        spec, [](const QueryStreamSpec& s) {
          return BuildTpcdsLike(s.ResolvedDbName(), s.scale, 0.8,
                                /*with_columnstore=*/false, s.seed);
        }));
  }));
  check(reg->Register("tpch_sf", [](const QueryStreamSpec& spec)
                                     -> StatusOr<std::unique_ptr<IQueryStreamGenerator>> {
    if (spec.sf <= 0) {
      return Status::InvalidArgument("tpch_sf sf must be > 0");
    }
    return std::unique_ptr<IQueryStreamGenerator>(new ReplayStreamGenerator(
        spec, [](const QueryStreamSpec& s) {
          TpchSfOptions options;
          options.sf = s.sf;
          options.seed = s.seed;
          options.pool = SharedPool();
          return BuildTpchSf(s.ResolvedDbName(), options);
        }));
  }));
  // "customerN" — N selects the profile; the database keeps the kind as
  // its name (matching the pre-registry BuildWorkloadByName behavior).
  check(reg->RegisterPrefix(
      "customer", [](const QueryStreamSpec& spec)
                      -> StatusOr<std::unique_ptr<IQueryStreamGenerator>> {
        const int idx = spec.kind.size() > 8
                            ? std::atoi(spec.kind.c_str() + 8)
                            : 2;
        if (idx < 1 || idx > 11) {
          return Status::InvalidArgument("customer profile out of range: " +
                                         spec.kind);
        }
        return std::unique_ptr<IQueryStreamGenerator>(new ReplayStreamGenerator(
            spec, [idx](const QueryStreamSpec& s) {
              return BuildCustomer(
                  s.db_name.empty() ? s.kind : s.db_name,
                  CustomerProfileFor(idx), s.seed);
            }));
      }));
  check(reg->Register(
      "synthetic", [](const QueryStreamSpec& spec)
                       -> StatusOr<std::unique_ptr<IQueryStreamGenerator>> {
        return std::unique_ptr<IQueryStreamGenerator>(
            new SyntheticStreamGenerator(spec, [](const QueryStreamSpec& s) {
              return BuildCustomer(s.ResolvedDbName(), SyntheticProfile(),
                                   s.seed);
            }));
      }));
}

}  // namespace

std::string SchemaDdl(const Database& db) {
  std::string ddl;
  for (int t = 0; t < db.num_tables(); ++t) {
    const Table& table = db.table(t);
    ddl += "CREATE TABLE " + table.name() + " (";
    for (size_t c = 0; c < table.num_columns(); ++c) {
      if (c > 0) ddl += ",";
      const Column& col = table.column(c);
      ddl += "\n  " + col.name() + " " + SqlTypeName(col.type());
    }
    ddl += "\n);\n";
  }
  return ddl;
}

QueryStreamRegistry& QueryStreamRegistry::Global() {
  static QueryStreamRegistry* registry = [] {
    auto* reg = new QueryStreamRegistry();
    RegisterBuiltins(reg);
    return reg;
  }();
  return *registry;
}

Status QueryStreamRegistry::Register(const std::string& kind,
                                     Factory factory) {
  AIMAI_CHECK(factory != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, f] : exact_) {
    if (k == kind) {
      return Status(StatusCode::kFailedPrecondition,
                    "query stream kind already registered: " + kind);
    }
  }
  exact_.emplace_back(kind, std::move(factory));
  return Status::Ok();
}

Status QueryStreamRegistry::RegisterPrefix(const std::string& prefix,
                                           Factory factory) {
  AIMAI_CHECK(factory != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [p, f] : prefixes_) {
    if (p == prefix) {
      return Status(StatusCode::kFailedPrecondition,
                    "query stream prefix already registered: " + prefix);
    }
  }
  prefixes_.emplace_back(prefix, std::move(factory));
  return Status::Ok();
}

StatusOr<std::unique_ptr<IQueryStreamGenerator>> QueryStreamRegistry::Create(
    const QueryStreamSpec& spec) const {
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [k, f] : exact_) {
      if (k == spec.kind) {
        factory = f;
        break;
      }
    }
    if (!factory) {
      size_t best = 0;
      for (const auto& [p, f] : prefixes_) {
        if (spec.kind.rfind(p, 0) == 0 && p.size() >= best) {
          best = p.size();
          factory = f;
        }
      }
    }
  }
  if (!factory) {
    return Status(StatusCode::kInvalidArgument,
                  "unknown query stream kind: " + spec.kind);
  }
  return factory(spec);
}

bool QueryStreamRegistry::Knows(const std::string& kind) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [k, f] : exact_) {
    if (k == kind) return true;
  }
  for (const auto& [p, f] : prefixes_) {
    if (kind.rfind(p, 0) == 0) return true;
  }
  return false;
}

std::vector<std::string> QueryStreamRegistry::Kinds() const {
  std::vector<std::string> kinds;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [k, f] : exact_) kinds.push_back(k);
    for (const auto& [p, f] : prefixes_) kinds.push_back(p + "*");
  }
  std::sort(kinds.begin(), kinds.end());
  return kinds;
}

StatusOr<std::unique_ptr<IQueryStreamGenerator>> MakePreparedQueryStream(
    const QueryStreamSpec& spec) {
  AIMAI_ASSIGN_OR_RETURN(auto gen, QueryStreamRegistry::Global().Create(spec));
  AIMAI_RETURN_IF_ERROR(gen->PrepareInitialData());
  return gen;
}

}  // namespace aimai
