#ifndef AIMAI_WORKLOADS_QUERY_HELPERS_H_
#define AIMAI_WORKLOADS_QUERY_HELPERS_H_

#include <string>

#include "common/check.h"
#include "common/random.h"
#include "optimizer/query.h"

namespace aimai::workload_internal {

/// Column lookup that aborts on typos.
inline int Col(const Database& db, int t, const char* name) {
  const int c = db.table(t).ColumnIndex(name);
  AIMAI_CHECK_MSG(c >= 0, name);
  return c;
}

inline Predicate PredEq(int t, int c, Value v) {
  Predicate p;
  p.table_id = t;
  p.column_id = c;
  p.op = CmpOp::kEq;
  p.lo = std::move(v);
  return p;
}

inline Predicate PredCmp(int t, int c, CmpOp op, Value v) {
  Predicate p;
  p.table_id = t;
  p.column_id = c;
  p.op = op;
  p.lo = std::move(v);
  return p;
}

inline Predicate PredBetween(int t, int c, Value lo, Value hi) {
  Predicate p;
  p.table_id = t;
  p.column_id = c;
  p.op = CmpOp::kBetween;
  p.lo = std::move(lo);
  p.hi = std::move(hi);
  return p;
}

inline JoinCond Join(int lt, int lc, int rt, int rc) {
  return JoinCond{ColumnRef{lt, lc}, ColumnRef{rt, rc}};
}

/// A random member of a string column's dictionary (uniform over values).
inline Value DictValue(const Database& db, int t, int c, Rng* rng) {
  const Column& col = db.table(t).column(static_cast<size_t>(c));
  AIMAI_CHECK(!col.dictionary().empty());
  return Value::Str(col.dictionary()[rng->Index(col.dictionary().size())]);
}

/// The value of a random *row* (frequency-weighted): application query
/// parameters come from the data, so skewed values are hit in proportion
/// to their frequency — exactly when the 1/NDV estimate is worst.
inline Value RowValue(const Database& db, int t, int c, Rng* rng) {
  const Table& table = db.table(t);
  const Column& col = table.column(static_cast<size_t>(c));
  AIMAI_CHECK(table.num_rows() > 0);
  return col.GetValue(rng->Index(table.num_rows()));
}

}  // namespace aimai::workload_internal

#endif  // AIMAI_WORKLOADS_QUERY_HELPERS_H_
