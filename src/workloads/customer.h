#ifndef AIMAI_WORKLOADS_CUSTOMER_H_
#define AIMAI_WORKLOADS_CUSTOMER_H_

#include <memory>
#include <string>

#include "workloads/workload.h"

namespace aimai {

/// Profile of a synthetic "customer" database. The eleven real customer
/// workloads of the paper are proprietary; these generators substitute a
/// family of randomized schemas/workloads spanning the same diversity
/// axes: table count, data volume, skew, attribute correlation, join
/// depth, and query shape. Profile 6 ("Customer6") is the most complex,
/// matching the paper's description (many queries with deep joins).
struct CustomerProfile {
  int num_tables = 6;
  size_t min_rows = 500;
  size_t max_rows = 20000;
  int num_queries = 12;
  int max_joins = 4;          // Tables per query - 1.
  double zipf_s = 0.8;
  double correlation_fraction = 0.3;  // Columns correlated with another.
  int max_predicates = 3;
  double agg_probability = 0.6;
};

/// The built-in profile for customer database `index` (1-based, 1..11).
CustomerProfile CustomerProfileFor(int index);

std::unique_ptr<BenchmarkDatabase> BuildCustomer(const std::string& name,
                                                 const CustomerProfile& prof,
                                                 uint64_t seed);

}  // namespace aimai

#endif  // AIMAI_WORKLOADS_CUSTOMER_H_
