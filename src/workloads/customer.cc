#include "workloads/customer.h"

#include <algorithm>

#include "storage/data_generator.h"
#include "workloads/query_helpers.h"

namespace aimai {

namespace {
using workload_internal::Col;
using workload_internal::Join;
using workload_internal::PredBetween;
using workload_internal::PredCmp;
using workload_internal::PredEq;
}  // namespace

CustomerProfile CustomerProfileFor(int index) {
  CustomerProfile p;
  switch (index) {
    case 1:   // Small OLTP-ish app.
      p = {4, 500, 6000, 10, 2, 0.3, 0.2, 2, 0.3};
      break;
    case 2:   // Mid-size, moderate skew.
      p = {6, 1000, 15000, 12, 3, 0.7, 0.3, 3, 0.5};
      break;
    case 3:   // Wide tables, few joins.
      p = {5, 2000, 25000, 12, 2, 0.5, 0.4, 4, 0.4};
      break;
    case 4:   // Star-schema reporting.
      p = {7, 500, 30000, 14, 4, 0.9, 0.3, 3, 0.8};
      break;
    case 5:   // Heavy skew.
      p = {6, 1000, 20000, 12, 3, 1.1, 0.4, 3, 0.5};
      break;
    case 6:   // The most complex: many tables, deep joins.
      p = {12, 800, 40000, 24, 8, 0.9, 0.4, 4, 0.7};
      break;
    case 7:   // Correlation-heavy.
      p = {6, 1000, 18000, 12, 3, 0.6, 0.7, 3, 0.5};
      break;
    case 8:   // Large single-fact analytics.
      p = {5, 2000, 50000, 12, 3, 0.8, 0.3, 3, 0.9};
      break;
    case 9:   // Many small tables.
      p = {10, 300, 5000, 16, 5, 0.4, 0.2, 2, 0.4};
      break;
    case 10:  // Mixed point lookup + reporting.
      p = {6, 1000, 25000, 14, 4, 0.7, 0.3, 3, 0.5};
      break;
    case 11:  // Deep joins, low volume.
      p = {9, 400, 8000, 14, 6, 0.5, 0.3, 3, 0.6};
      break;
    default:
      break;
  }
  return p;
}

std::unique_ptr<BenchmarkDatabase> BuildCustomer(const std::string& name,
                                                 const CustomerProfile& prof,
                                                 uint64_t seed) {
  auto bdb = std::make_unique<BenchmarkDatabase>(name, seed ^ 0xc0ffee);
  Database* db = bdb->db();
  Rng rng(seed);
  DataGenerator gen(rng.Split());

  // --- Schema: table 0 is the "fact"; each later table i gets a PK and
  // every table > 0 is reachable from some earlier table via an FK.
  struct TableMeta {
    int id;
    size_t rows;
    std::vector<int> fk_cols;      // Columns referencing earlier tables.
    std::vector<int> fk_targets;   // Referenced table ids.
    std::vector<int> value_cols;   // Filterable columns.
  };
  std::vector<TableMeta> metas;

  for (int ti = 0; ti < prof.num_tables; ++ti) {
    TableMeta meta;
    const double frac = rng.Uniform();
    meta.rows = prof.min_rows +
                static_cast<size_t>(frac * frac *
                                    static_cast<double>(prof.max_rows -
                                                        prof.min_rows));
    if (ti == 0) meta.rows = prof.max_rows;  // Table 0 is the biggest.

    auto table = std::make_unique<Table>("t" + std::to_string(ti));
    gen.FillSequentialInt(table->AddColumn("pk", DataType::kInt64),
                          meta.rows);

    // FKs to up to two random earlier tables.
    if (ti > 0) {
      const int n_fks = 1 + (prof.max_joins > 2 && rng.Bernoulli(0.4) ? 1 : 0);
      for (int f = 0; f < n_fks && f < ti; ++f) {
        const int target = static_cast<int>(rng.Index(static_cast<size_t>(ti)));
        const std::string cname = "fk" + std::to_string(f);
        gen.FillForeignKey(table->AddColumn(cname, DataType::kInt64),
                           meta.rows,
                           static_cast<int64_t>(metas[static_cast<size_t>(
                                                          target)]
                                                    .rows),
                           rng.Bernoulli(0.5) ? prof.zipf_s : 0.0);
        meta.fk_cols.push_back(table->ColumnIndex(cname));
        meta.fk_targets.push_back(target);
      }
    } else {
      // The fact table gets FKs filled in reverse later; instead give it
      // extra value columns.
    }

    // Value columns: ints (uniform or zipf), doubles, strings; some
    // correlated with the previous value column.
    const int n_values = 3 + static_cast<int>(rng.Index(4));
    Column* prev_int = nullptr;
    for (int v = 0; v < n_values; ++v) {
      const std::string cname = "v" + std::to_string(v);
      const double pick = rng.Uniform();
      if (pick < 0.5) {
        Column* col = table->AddColumn(cname, DataType::kInt64);
        if (prev_int != nullptr && rng.Bernoulli(prof.correlation_fraction)) {
          gen.FillCorrelatedInt(col, *prev_int, meta.rows,
                                rng.Uniform(0.5, 3.0),
                                rng.UniformInt(0, 20));
        } else {
          const int64_t domain = rng.UniformInt(10, 10000);
          gen.FillZipfInt(col, meta.rows, 0, domain,
                          rng.Bernoulli(0.5) ? prof.zipf_s : 0.0);
        }
        prev_int = col;
      } else if (pick < 0.75) {
        gen.FillUniformDouble(table->AddColumn(cname, DataType::kDouble),
                              meta.rows, 0, rng.Uniform(100, 100000));
      } else if (rng.Bernoulli(prof.correlation_fraction)) {
        // Correlated with the primary key: filters on it select the rows
        // that skewed foreign keys point at.
        gen.FillBucketCorrelatedDict(
            table->AddColumn(cname, DataType::kString),
            *table->mutable_column(
                static_cast<size_t>(table->ColumnIndex("pk"))),
            meta.rows, rng.UniformInt(4, 50), prof.zipf_s, 0.2,
            "s" + std::to_string(ti) + "_");
      } else {
        gen.FillDictString(table->AddColumn(cname, DataType::kString),
                           meta.rows, rng.UniformInt(4, 200),
                           rng.Bernoulli(0.5) ? prof.zipf_s : 0.0,
                           "s" + std::to_string(ti) + "_");
      }
      meta.value_cols.push_back(table->ColumnIndex(cname));
    }
    table->SealRows();
    meta.id = db->AddTable(std::move(table));
    metas.push_back(std::move(meta));
  }

  // Give table 0 FKs into several other tables so deep join chains exist.
  {
    Table* fact = db->mutable_table(metas[0].id);
    DataGenerator fgen(rng.Split());
    const int n_fks = std::min(prof.num_tables - 1, prof.max_joins);
    for (int f = 0; f < n_fks; ++f) {
      const int target = 1 + f;
      const std::string cname = "fk" + std::to_string(f);
      fgen.FillForeignKey(
          fact->AddColumn(cname, DataType::kInt64), metas[0].rows,
          static_cast<int64_t>(metas[static_cast<size_t>(target)].rows),
          rng.Bernoulli(0.6) ? prof.zipf_s : 0.0);
      metas[0].fk_cols.push_back(fact->ColumnIndex(cname));
      metas[0].fk_targets.push_back(target);
    }
    fact->SealRows();
  }

  bdb->FinishLoading();
  const Database& d = *db;

  // --- Queries: random join trees rooted at a random table, random
  // predicates on value columns, optional aggregation / ordering.
  auto random_predicate = [&](int table_id, int col) -> Predicate {
    const Column& c = d.table(table_id).column(static_cast<size_t>(col));
    if (c.type() == DataType::kString) {
      // Frequency-weighted parameter most of the time (application-like).
      return PredEq(table_id, col,
                    rng.Bernoulli(0.65)
                        ? workload_internal::RowValue(d, table_id, col, &rng)
                        : workload_internal::DictValue(d, table_id, col,
                                                       &rng));
    }
    // Sample two actual values for a range (or one for eq/cmp).
    const size_t r1 = rng.Index(d.table(table_id).num_rows());
    const double v1 = c.NumericAt(r1);
    const double pick = rng.Uniform();
    if (c.type() == DataType::kInt64) {
      const int64_t iv = static_cast<int64_t>(v1);
      if (pick < 0.4) return PredEq(table_id, col, Value::Int(iv));
      if (pick < 0.7) {
        return PredCmp(table_id, col, rng.Bernoulli(0.5) ? CmpOp::kLe
                                                         : CmpOp::kGe,
                       Value::Int(iv));
      }
      return PredBetween(table_id, col, Value::Int(iv),
                         Value::Int(iv + rng.UniformInt(1, 1000)));
    }
    if (pick < 0.5) {
      return PredCmp(table_id, col, rng.Bernoulli(0.5) ? CmpOp::kLe
                                                       : CmpOp::kGe,
                     Value::Real(v1));
    }
    return PredBetween(table_id, col, Value::Real(v1),
                       Value::Real(v1 * rng.Uniform(1.01, 2.0)));
  };

  for (int qi = 0; qi < prof.num_queries; ++qi) {
    QuerySpec q;
    q.name = "cq" + std::to_string(qi);

    // Grow a connected join tree via FK edges.
    const int target_tables =
        1 + static_cast<int>(rng.Index(static_cast<size_t>(prof.max_joins) + 1));
    std::vector<int> in_query;
    int start = qi % 3 == 0
                    ? static_cast<int>(rng.Index(metas.size()))
                    : 0;  // Bias toward the fact table.
    in_query.push_back(start);
    // Collect FK edges incident to tables in the query.
    bool grew = true;
    while (static_cast<int>(in_query.size()) < target_tables && grew) {
      grew = false;
      for (const TableMeta& m : metas) {
        if (static_cast<int>(in_query.size()) >= target_tables) break;
        for (size_t f = 0; f < m.fk_cols.size(); ++f) {
          // Membership must be rechecked per edge: adding an endpoint
          // below changes it for the next foreign key of the same table.
          const bool m_in =
              std::find(in_query.begin(), in_query.end(), m.id) !=
              in_query.end();
          const int tgt = metas[static_cast<size_t>(m.fk_targets[f])].id;
          const bool t_in =
              std::find(in_query.begin(), in_query.end(), tgt) !=
              in_query.end();
          if (m_in == t_in) continue;  // Both in or both out.
          if (static_cast<int>(in_query.size()) >= target_tables) break;
          // Add the missing endpoint and the join condition.
          in_query.push_back(m_in ? tgt : m.id);
          q.joins.push_back(Join(m.id, m.fk_cols[f], tgt,
                                 Col(d, tgt, "pk")));
          grew = true;
        }
      }
    }
    q.tables = in_query;

    // Predicates.
    const int n_preds =
        1 + static_cast<int>(rng.Index(static_cast<size_t>(
                prof.max_predicates)));
    for (int p = 0; p < n_preds; ++p) {
      const int t = q.tables[rng.Index(q.tables.size())];
      const TableMeta& m = metas[static_cast<size_t>(t)];
      if (m.value_cols.empty()) continue;
      const int col = m.value_cols[rng.Index(m.value_cols.size())];
      q.predicates.push_back(random_predicate(t, col));
    }

    // Shape: aggregate or plain select.
    const int t0 = q.tables[0];
    const TableMeta& m0 = metas[static_cast<size_t>(t0)];
    if (rng.Bernoulli(prof.agg_probability) && !m0.value_cols.empty()) {
      const int gcol = m0.value_cols[rng.Index(m0.value_cols.size())];
      q.group_by = {ColumnRef{t0, gcol}};
      q.aggregates = {{AggFunc::kCount, ColumnRef{}}};
      // Sum over some numeric column if available.
      for (int vc : m0.value_cols) {
        if (d.table(t0).column(static_cast<size_t>(vc)).type() !=
            DataType::kString) {
          q.aggregates.push_back({AggFunc::kSum, ColumnRef{t0, vc}});
          break;
        }
      }
      q.order_by = {SortKey{ColumnRef{t0, gcol}, true}};
    } else {
      for (int vc : m0.value_cols) {
        q.select_columns.push_back(ColumnRef{t0, vc});
        if (q.select_columns.size() >= 3) break;
      }
      if (!m0.value_cols.empty() && rng.Bernoulli(0.6)) {
        q.order_by = {
            SortKey{ColumnRef{t0, m0.value_cols[0]}, rng.Bernoulli(0.5)}};
        if (rng.Bernoulli(0.5)) q.top_n = rng.UniformInt(10, 200);
      }
    }
    bdb->queries().push_back(std::move(q));
  }
  return bdb;
}

}  // namespace aimai
