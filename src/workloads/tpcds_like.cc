#include "workloads/tpcds_like.h"

#include "storage/data_generator.h"
#include "workloads/query_helpers.h"

namespace aimai {

namespace {
using workload_internal::AddInstances;
using workload_internal::Col;
using workload_internal::DictValue;
using workload_internal::Join;
using workload_internal::PredBetween;
using workload_internal::PredCmp;
using workload_internal::PredEq;
}  // namespace

std::unique_ptr<BenchmarkDatabase> BuildTpcdsLike(const std::string& name,
                                                  int scale, double zipf_s,
                                                  bool with_columnstore,
                                                  uint64_t seed) {
  auto bdb = std::make_unique<BenchmarkDatabase>(name, seed ^ 0xd5ca1e);
  Database* db = bdb->db();
  DataGenerator gen(Rng{seed});

  const size_t n_date = 1200;
  const size_t n_item = 150 * static_cast<size_t>(scale);
  const size_t n_customer = 200 * static_cast<size_t>(scale);
  const size_t n_address = 120 * static_cast<size_t>(scale);
  const size_t n_hd = 144;
  const size_t n_store = 12;
  const size_t n_promo = 60;
  const size_t n_ss = 3000 * static_cast<size_t>(scale);
  const size_t n_sr = n_ss / 10;
  const size_t n_cs = n_ss / 2;
  const size_t n_ws = n_ss / 3;

  // --- date_dim ---
  auto date_dim = std::make_unique<Table>("date_dim");
  gen.FillSequentialInt(date_dim->AddColumn("d_date_sk", DataType::kInt64),
                        n_date);
  {
    // Year derives from the date key: correlated dimension attributes.
    Column* year = date_dim->AddColumn("d_year", DataType::kInt64);
    Column* moy = date_dim->AddColumn("d_moy", DataType::kInt64);
    for (size_t i = 0; i < n_date; ++i) {
      year->AppendInt(1998 + static_cast<int64_t>(i) / 365);
      moy->AppendInt(1 + (static_cast<int64_t>(i) / 30) % 12);
    }
  }
  date_dim->SealRows();
  const int t_date = db->AddTable(std::move(date_dim));

  // --- item: category determines brand bucket (correlation). ---
  auto item = std::make_unique<Table>("item");
  Column* i_item_sk = item->AddColumn("i_item_sk", DataType::kInt64);
  gen.FillSequentialInt(i_item_sk, n_item);
  // Category buckets the item key: Zipf fact FKs concentrate on low item
  // keys, so one category receives most of the sales volume (the
  // dimension-filter-vs-join-skew correlation the optimizer cannot see).
  Column* i_category = item->AddColumn("i_category", DataType::kInt64);
  gen.FillCorrelatedInt(i_category, *i_item_sk, n_item,
                        9.0 / static_cast<double>(n_item), 1);
  gen.FillCorrelatedInt(item->AddColumn("i_brand", DataType::kInt64),
                        *i_category, n_item, 10.0, 2);
  gen.FillUniformDouble(item->AddColumn("i_current_price", DataType::kDouble),
                        n_item, 0.5, 300);
  gen.FillBucketCorrelatedDict(item->AddColumn("i_color", DataType::kString),
                               *i_item_sk, n_item, 20, zipf_s, 0.3, "color");
  item->SealRows();
  const int t_item = db->AddTable(std::move(item));

  // --- customer ---
  auto customer = std::make_unique<Table>("customer");
  gen.FillSequentialInt(customer->AddColumn("c_customer_sk",
                                            DataType::kInt64),
                        n_customer);
  gen.FillForeignKey(customer->AddColumn("c_current_addr_sk",
                                         DataType::kInt64),
                     n_customer, static_cast<int64_t>(n_address), 0.0);
  gen.FillForeignKey(customer->AddColumn("c_current_hdemo_sk",
                                         DataType::kInt64),
                     n_customer, static_cast<int64_t>(n_hd), zipf_s);
  gen.FillUniformInt(customer->AddColumn("c_birth_year", DataType::kInt64),
                     n_customer, 1930, 2000);
  customer->SealRows();
  const int t_customer = db->AddTable(std::move(customer));

  // --- customer_address ---
  auto address = std::make_unique<Table>("customer_address");
  gen.FillSequentialInt(address->AddColumn("ca_address_sk", DataType::kInt64),
                        n_address);
  gen.FillDictString(address->AddColumn("ca_state", DataType::kString),
                     n_address, 50, zipf_s, "st");
  gen.FillUniformInt(address->AddColumn("ca_zip", DataType::kInt64),
                     n_address, 10000, 99999);
  address->SealRows();
  const int t_address = db->AddTable(std::move(address));

  // --- household_demographics ---
  auto hd = std::make_unique<Table>("household_demographics");
  gen.FillSequentialInt(hd->AddColumn("hd_demo_sk", DataType::kInt64), n_hd);
  gen.FillUniformInt(hd->AddColumn("hd_dep_count", DataType::kInt64), n_hd, 0,
                     9);
  gen.FillDictString(hd->AddColumn("hd_buy_potential", DataType::kString),
                     n_hd, 6, 0.0, "buy");
  hd->SealRows();
  const int t_hd = db->AddTable(std::move(hd));

  // --- store ---
  auto store = std::make_unique<Table>("store");
  gen.FillSequentialInt(store->AddColumn("s_store_sk", DataType::kInt64),
                        n_store);
  gen.FillDictString(store->AddColumn("s_state", DataType::kString), n_store,
                     8, 0.0, "sst");
  gen.FillUniformInt(store->AddColumn("s_floor_space", DataType::kInt64),
                     n_store, 5000000, 10000000);
  store->SealRows();
  const int t_store = db->AddTable(std::move(store));

  // --- promotion ---
  auto promo = std::make_unique<Table>("promotion");
  gen.FillSequentialInt(promo->AddColumn("p_promo_sk", DataType::kInt64),
                        n_promo);
  gen.FillDictString(promo->AddColumn("p_channel", DataType::kString),
                     n_promo, 4, 0.0, "ch");
  promo->SealRows();
  const int t_promo = db->AddTable(std::move(promo));

  // --- fact tables ---
  auto make_sales = [&](const char* tname, size_t n) {
    auto t = std::make_unique<Table>(tname);
    gen.FillForeignKey(t->AddColumn("sold_date_sk", DataType::kInt64), n,
                       static_cast<int64_t>(n_date), zipf_s);
    gen.FillForeignKey(t->AddColumn("item_sk", DataType::kInt64), n,
                       static_cast<int64_t>(n_item), zipf_s);
    gen.FillForeignKey(t->AddColumn("customer_sk", DataType::kInt64), n,
                       static_cast<int64_t>(n_customer), zipf_s);
    gen.FillForeignKey(t->AddColumn("store_sk", DataType::kInt64), n,
                       static_cast<int64_t>(n_store), zipf_s);
    gen.FillForeignKey(t->AddColumn("promo_sk", DataType::kInt64), n,
                       static_cast<int64_t>(n_promo), zipf_s);
    Column* qty = t->AddColumn("quantity", DataType::kInt64);
    gen.FillUniformInt(qty, n, 1, 100);
    gen.FillCorrelatedInt(t->AddColumn("sales_price", DataType::kInt64),
                          *qty, n, 25.0, 100);
    gen.FillUniformDouble(t->AddColumn("net_profit", DataType::kDouble), n,
                          -2000, 5000);
    t->SealRows();
    return db->AddTable(std::move(t));
  };
  const int t_ss = make_sales("store_sales", n_ss);
  const int t_cs = make_sales("catalog_sales", n_cs);
  const int t_ws = make_sales("web_sales", n_ws);

  // --- store_returns ---
  auto sr = std::make_unique<Table>("store_returns");
  gen.FillForeignKey(sr->AddColumn("sr_item_sk", DataType::kInt64), n_sr,
                     static_cast<int64_t>(n_item), zipf_s);
  gen.FillForeignKey(sr->AddColumn("sr_customer_sk", DataType::kInt64), n_sr,
                     static_cast<int64_t>(n_customer), zipf_s);
  gen.FillForeignKey(sr->AddColumn("sr_returned_date_sk", DataType::kInt64),
                     n_sr, static_cast<int64_t>(n_date), zipf_s);
  gen.FillUniformDouble(sr->AddColumn("sr_return_amt", DataType::kDouble),
                        n_sr, 0.5, 2000);
  sr->SealRows();
  const int t_sr = db->AddTable(std::move(sr));

  bdb->FinishLoading();

  if (with_columnstore) {
    for (int t : {t_ss, t_cs, t_ws}) {
      IndexDef cs;
      cs.table_id = t;
      cs.is_columnstore = true;
      bdb->initial_config().Add(cs);
    }
  }

  // ---- Query templates ----
  Rng qrng(seed ^ 0xd51u);
  std::vector<QuerySpec>& queries = bdb->queries();
  const Database& d = *db;

  // Fact-table columns are shared across the three sales tables.
  auto fact_queries = [&](int fact, const std::string& prefix) {
    // Sales by item category in a date window (3-way join, group).
    AddInstances(&queries, prefix + "_cat", 2, [&](int, QuerySpec* q) {
      q->tables = {fact, t_item, t_date};
      const int64_t from = qrng.UniformInt(0, 900);
      q->predicates = {
          PredBetween(t_date, Col(d, t_date, "d_date_sk"), Value::Int(from),
                      Value::Int(from + 90)),
          PredEq(t_item, Col(d, t_item, "i_category"),
                 qrng.Bernoulli(0.65)
                     ? workload_internal::RowValue(
                           d, t_item, Col(d, t_item, "i_category"), &qrng)
                     : Value::Int(qrng.UniformInt(0, 9)))};
      q->joins = {Join(fact, Col(d, fact, "item_sk"), t_item,
                       Col(d, t_item, "i_item_sk")),
                  Join(fact, Col(d, fact, "sold_date_sk"), t_date,
                       Col(d, t_date, "d_date_sk"))};
      q->group_by = {ColumnRef{t_item, Col(d, t_item, "i_brand")}};
      q->aggregates = {
          {AggFunc::kSum, ColumnRef{fact, Col(d, fact, "sales_price")}},
          {AggFunc::kCount, ColumnRef{}}};
      q->order_by = {
          SortKey{ColumnRef{t_item, Col(d, t_item, "i_brand")}, true}};
      q->top_n = 25;
    });

    // Customer demographic slice (5-way join).
    AddInstances(&queries, prefix + "_demo", 2, [&](int, QuerySpec* q) {
      q->tables = {fact, t_customer, t_address, t_hd, t_date};
      q->predicates = {
          PredEq(t_address, Col(d, t_address, "ca_state"),
                 DictValue(d, t_address, Col(d, t_address, "ca_state"),
                           &qrng)),
          PredCmp(t_hd, Col(d, t_hd, "hd_dep_count"), CmpOp::kGe,
                  Value::Int(qrng.UniformInt(1, 5))),
          PredEq(t_date, Col(d, t_date, "d_year"),
                 Value::Int(qrng.UniformInt(1998, 2001)))};
      q->joins = {
          Join(fact, Col(d, fact, "customer_sk"), t_customer,
               Col(d, t_customer, "c_customer_sk")),
          Join(t_customer, Col(d, t_customer, "c_current_addr_sk"),
               t_address, Col(d, t_address, "ca_address_sk")),
          Join(t_customer, Col(d, t_customer, "c_current_hdemo_sk"), t_hd,
               Col(d, t_hd, "hd_demo_sk")),
          Join(fact, Col(d, fact, "sold_date_sk"), t_date,
               Col(d, t_date, "d_date_sk"))};
      q->group_by = {ColumnRef{t_address, Col(d, t_address, "ca_state")}};
      q->aggregates = {
          {AggFunc::kSum, ColumnRef{fact, Col(d, fact, "net_profit")}}};
    });
  };
  fact_queries(t_ss, "ss");
  fact_queries(t_cs, "cs");
  fact_queries(t_ws, "ws");

  // Correlated dimension pair: category determines the brand bucket, so
  // filtering both multiplies two selectivities that are not independent.
  AddInstances(&queries, "q_catbrand", 3, [&](int, QuerySpec* q) {
    q->tables = {t_ss, t_item};
    const size_t row = qrng.Index(d.table(t_item).num_rows());
    const int64_t cat = static_cast<int64_t>(
        d.table(t_item)
            .column(static_cast<size_t>(Col(d, t_item, "i_category")))
            .NumericAt(row));
    const int64_t brand = static_cast<int64_t>(
        d.table(t_item)
            .column(static_cast<size_t>(Col(d, t_item, "i_brand")))
            .NumericAt(row));
    q->predicates = {
        PredEq(t_item, Col(d, t_item, "i_category"), Value::Int(cat)),
        PredEq(t_item, Col(d, t_item, "i_brand"), Value::Int(brand))};
    q->joins = {Join(t_ss, Col(d, t_ss, "item_sk"), t_item,
                     Col(d, t_item, "i_item_sk"))};
    q->group_by = {ColumnRef{t_ss, Col(d, t_ss, "store_sk")}};
    q->aggregates = {
        {AggFunc::kSum, ColumnRef{t_ss, Col(d, t_ss, "sales_price")}},
        {AggFunc::kCount, ColumnRef{}}};
  });

  // Store revenue by state with promotion (6-way join).
  AddInstances(&queries, "q_promo", 2, [&](int, QuerySpec* q) {
    q->tables = {t_ss, t_store, t_promo, t_date, t_item};
    q->predicates = {
        PredEq(t_promo, Col(d, t_promo, "p_channel"),
               DictValue(d, t_promo, Col(d, t_promo, "p_channel"), &qrng)),
        PredEq(t_date, Col(d, t_date, "d_moy"),
               Value::Int(qrng.UniformInt(1, 12))),
        PredCmp(t_item, Col(d, t_item, "i_current_price"), CmpOp::kGt,
                Value::Real(qrng.Uniform(50, 200)))};
    q->joins = {Join(t_ss, Col(d, t_ss, "store_sk"), t_store,
                     Col(d, t_store, "s_store_sk")),
                Join(t_ss, Col(d, t_ss, "promo_sk"), t_promo,
                     Col(d, t_promo, "p_promo_sk")),
                Join(t_ss, Col(d, t_ss, "sold_date_sk"), t_date,
                     Col(d, t_date, "d_date_sk")),
                Join(t_ss, Col(d, t_ss, "item_sk"), t_item,
                     Col(d, t_item, "i_item_sk"))};
    q->group_by = {ColumnRef{t_store, Col(d, t_store, "s_state")}};
    q->aggregates = {
        {AggFunc::kSum, ColumnRef{t_ss, Col(d, t_ss, "sales_price")}}};
  });

  // Returned items vs sales (returns joined with item & date).
  AddInstances(&queries, "q_ret", 2, [&](int, QuerySpec* q) {
    q->tables = {t_sr, t_item, t_date};
    q->predicates = {
        PredEq(t_item, Col(d, t_item, "i_category"),
               Value::Int(qrng.UniformInt(0, 9))),
        PredCmp(t_date, Col(d, t_date, "d_year"), CmpOp::kGe,
                Value::Int(qrng.UniformInt(1998, 2000)))};
    q->joins = {Join(t_sr, Col(d, t_sr, "sr_item_sk"), t_item,
                     Col(d, t_item, "i_item_sk")),
                Join(t_sr, Col(d, t_sr, "sr_returned_date_sk"), t_date,
                     Col(d, t_date, "d_date_sk"))};
    q->group_by = {ColumnRef{t_item, Col(d, t_item, "i_brand")}};
    q->aggregates = {
        {AggFunc::kSum, ColumnRef{t_sr, Col(d, t_sr, "sr_return_amt")}},
        {AggFunc::kCount, ColumnRef{}}};
    q->order_by = {
        SortKey{ColumnRef{t_item, Col(d, t_item, "i_brand")}, true}};
    q->top_n = 20;
  });

  // Selective fact probe: quantity & price band on store_sales.
  AddInstances(&queries, "q_band", 2, [&](int, QuerySpec* q) {
    q->tables = {t_ss};
    const int64_t qlo = qrng.UniformInt(1, 80);
    q->predicates = {
        PredBetween(t_ss, Col(d, t_ss, "quantity"), Value::Int(qlo),
                    Value::Int(qlo + 10)),
        PredCmp(t_ss, Col(d, t_ss, "sales_price"), CmpOp::kLt,
                Value::Int(qrng.UniformInt(300, 2000)))};
    q->select_columns = {ColumnRef{t_ss, Col(d, t_ss, "customer_sk")},
                         ColumnRef{t_ss, Col(d, t_ss, "net_profit")}};
    q->order_by = {
        SortKey{ColumnRef{t_ss, Col(d, t_ss, "net_profit")}, false}};
    q->top_n = 100;
  });

  // Cross-channel comparison: store vs web for one item category.
  AddInstances(&queries, "q_xchan", 2, [&](int, QuerySpec* q) {
    q->tables = {t_ws, t_item, t_date};
    q->predicates = {
        PredEq(t_item, Col(d, t_item, "i_category"),
               Value::Int(qrng.UniformInt(0, 9))),
        PredEq(t_item, Col(d, t_item, "i_color"),
               DictValue(d, t_item, Col(d, t_item, "i_color"), &qrng)),
        PredEq(t_date, Col(d, t_date, "d_year"),
               Value::Int(qrng.UniformInt(1998, 2001)))};
    q->joins = {Join(t_ws, Col(d, t_ws, "item_sk"), t_item,
                     Col(d, t_item, "i_item_sk")),
                Join(t_ws, Col(d, t_ws, "sold_date_sk"), t_date,
                     Col(d, t_date, "d_date_sk"))};
    q->aggregates = {
        {AggFunc::kSum, ColumnRef{t_ws, Col(d, t_ws, "sales_price")}},
        {AggFunc::kAvg, ColumnRef{t_ws, Col(d, t_ws, "quantity")}}};
  });

  return bdb;
}

}  // namespace aimai
