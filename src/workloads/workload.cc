#include "workloads/workload.h"

#include "common/check.h"

namespace aimai {

BenchmarkDatabase::BenchmarkDatabase(std::string name, uint64_t noise_seed)
    : db_(std::make_unique<Database>(std::move(name))),
      noise_rng_(noise_seed), hardware_seed_(noise_seed) {}

void BenchmarkDatabase::FinishLoading() {
  AIMAI_CHECK(db_->num_tables() > 0);
  stats_ = std::make_unique<StatisticsCatalog>(db_.get());
  what_if_ = std::make_unique<WhatIfOptimizer>(db_.get(), stats_.get());
  indexes_ = std::make_unique<IndexManager>(db_.get());
  executor_ = std::make_unique<Executor>(db_.get(), indexes_.get());
  // Each database lives on its own fleet node: true execution costs carry
  // a node-specific calibration the global optimizer model cannot know.
  exec_cost_ = std::make_unique<ExecutionCostModel>(
      db_.get(), CostConstants::True().PerturbedForNode(hardware_seed_));
}

TuningEnv BenchmarkDatabase::MakeEnv(int database_id) {
  AIMAI_CHECK(stats_ != nullptr);  // FinishLoading must have run.
  TuningEnv env;
  env.db = db_.get();
  env.database_id = database_id;
  env.stats = stats_.get();
  env.what_if = what_if_.get();
  env.indexes = indexes_.get();
  env.executor = executor_.get();
  env.exec_cost = exec_cost_.get();
  env.noise_rng = &noise_rng_;
  return env;
}

}  // namespace aimai
