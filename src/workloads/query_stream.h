#ifndef AIMAI_WORKLOADS_QUERY_STREAM_H_
#define AIMAI_WORKLOADS_QUERY_STREAM_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "workloads/workload.h"

namespace aimai {

/// Parameters a query-stream generator is instantiated with. One spec
/// fully determines a generator: the same spec always produces the same
/// database (bit-identical ContentFingerprints) and the same query stream
/// (NextQueryBatch draws from a seeded Rng split, never from global
/// state). `kind` is the registry key ("tpch", "tpcds", "customerN",
/// "tpch_sf", "synthetic").
struct QueryStreamSpec {
  std::string kind;
  /// Integer scale multiplier (toy tpch/tpcds/customer families).
  int scale = 1;
  /// Fractional TPC-H scale factor (tpch_sf family only).
  double sf = 0.01;
  /// Base seed for data generation AND the query stream.
  uint64_t seed = 42;
  /// Database name; empty resolves to "<kind>_db".
  std::string db_name;

  QueryStreamSpec& WithKind(std::string k) {
    kind = std::move(k);
    return *this;
  }
  QueryStreamSpec& WithScale(int s) {
    scale = s;
    return *this;
  }
  QueryStreamSpec& WithSf(double f) {
    sf = f;
    return *this;
  }
  QueryStreamSpec& WithSeed(uint64_t s) {
    seed = s;
    return *this;
  }
  QueryStreamSpec& WithDbName(std::string n) {
    db_name = std::move(n);
    return *this;
  }

  std::string ResolvedDbName() const {
    return db_name.empty() ? kind + "_db" : db_name;
  }
};

/// Pluggable query-stream generator (modeled on ydb's
/// IWorkloadQueryGenerator): every workload family exposes the same three
/// phases —
///
///   GetDdl()             — the schema as CREATE TABLE text (what a real
///                          driver would execute against a server),
///   PrepareInitialData() — builds and populates the BenchmarkDatabase
///                          (tables, statistics, optimizer, executor,
///                          initial configuration); idempotent,
///   NextQueryBatch(n)    — up to n query instances of an *open-ended*
///                          stream. Closed families (tpch, tpcds,
///                          customer, tpch_sf) replay their template
///                          instances in a seeded shuffled cycle with
///                          fresh instance names; the synthetic family
///                          instantiates brand-new queries forever.
///
/// Streams are deterministic: two generators built from equal specs yield
/// byte-identical batches in the same call sequence, regardless of thread
/// counts anywhere else in the process. Generators are NOT thread-safe;
/// one caller (the traffic engine's schedule builder, a bench's driver
/// loop) owns the cursor.
class IQueryStreamGenerator {
 public:
  virtual ~IQueryStreamGenerator() = default;

  /// The registry kind this generator was created for.
  virtual const std::string& kind() const = 0;
  virtual const QueryStreamSpec& spec() const = 0;

  /// Schema DDL (builds the database on first use).
  virtual std::string GetDdl() = 0;

  /// Builds data + statistics; must succeed before NextQueryBatch.
  virtual Status PrepareInitialData() = 0;

  /// The built database; nullptr before PrepareInitialData (or after
  /// TakeDatabase).
  virtual BenchmarkDatabase* database() = 0;

  /// Draws the next batch (at most `max_queries` instances, at least one)
  /// from the stream. Instance names are unique across the stream's
  /// lifetime ("<template>~<seq>").
  virtual StatusOr<std::vector<QuerySpec>> NextQueryBatch(
      int max_queries) = 0;

  /// Relinquishes the built database (the deprecated Build* shims are
  /// this call). The generator is exhausted afterwards.
  virtual std::unique_ptr<BenchmarkDatabase> TakeDatabase() = 0;
};

/// Process-wide registry of query-stream factories. All built-in families
/// self-register on first access; external code may add its own kinds.
/// `Create` resolves an exact kind first, then the longest registered
/// prefix (which is how "customer3".."customer11" dispatch to the
/// "customer" factory).
class QueryStreamRegistry {
 public:
  using Factory = std::function<StatusOr<std::unique_ptr<IQueryStreamGenerator>>(
      const QueryStreamSpec&)>;

  /// The global registry with the built-in families installed.
  static QueryStreamRegistry& Global();

  QueryStreamRegistry() = default;
  QueryStreamRegistry(const QueryStreamRegistry&) = delete;
  QueryStreamRegistry& operator=(const QueryStreamRegistry&) = delete;

  /// Registers an exact kind; FailedPrecondition if taken.
  Status Register(const std::string& kind, Factory factory);
  /// Registers a prefix family ("customer" matches "customerN").
  Status RegisterPrefix(const std::string& prefix, Factory factory);

  /// Instantiates a generator for `spec.kind` (exact match first, then the
  /// longest registered prefix); InvalidArgument for unknown kinds.
  StatusOr<std::unique_ptr<IQueryStreamGenerator>> Create(
      const QueryStreamSpec& spec) const;

  /// True when `kind` would resolve (exactly or by prefix).
  bool Knows(const std::string& kind) const;

  /// Registered exact kinds plus prefix families (prefix kinds carry a
  /// trailing "*"), sorted.
  std::vector<std::string> Kinds() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Factory>> exact_;
  std::vector<std::pair<std::string, Factory>> prefixes_;
};

/// Convenience: Create + PrepareInitialData through the global registry.
StatusOr<std::unique_ptr<IQueryStreamGenerator>> MakePreparedQueryStream(
    const QueryStreamSpec& spec);

/// Renders a database's schema as CREATE TABLE statements (the GetDdl
/// implementation shared by every built-in family).
std::string SchemaDdl(const Database& db);

}  // namespace aimai

#endif  // AIMAI_WORKLOADS_QUERY_STREAM_H_
