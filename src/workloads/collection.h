#ifndef AIMAI_WORKLOADS_COLLECTION_H_
#define AIMAI_WORKLOADS_COLLECTION_H_

#include <memory>
#include <vector>

#include "models/repository.h"
#include "workloads/workload.h"

namespace aimai {

/// Builds the fifteen-database evaluation suite (§7.2 / Table 2):
/// TPC-H-like at two scales with Zipf skew, TPC-DS-like at two scales
/// (the larger starting from columnstore), and eleven synthetic customer
/// databases. `scale_divisor` > 1 shrinks every database (for fast test
/// runs); the relative shape of the suite is preserved.
std::vector<std::unique_ptr<BenchmarkDatabase>> BuildBenchmarkSuite(
    uint64_t seed, int scale_divisor = 1);

/// A smaller suite (one of each family) for unit/integration tests.
std::vector<std::unique_ptr<BenchmarkDatabase>> BuildSmallSuite(
    uint64_t seed);

/// DEPRECATED — thin shim over `QueryStreamRegistry::Global()` (see
/// workloads/query_stream.h); will be removed one release after the
/// traffic-engine PR. Use `MakePreparedQueryStream(spec)` +
/// `TakeDatabase()` instead. Resolves "tpch" / "tpcds" / "customerN" /
/// "tpch_sf" / "synthetic" through the registry; returns nullptr for an
/// unknown kind or an invalid spec.
std::unique_ptr<BenchmarkDatabase> BuildWorkloadByName(
    const std::string& kind, int scale, double sf, uint64_t seed);

/// Execution-data collection (§7.3 protocol): for every query, obtain the
/// tuner's index recommendation (optimizer-driven, no ML), enumerate
/// random subsets of the recommended indexes as configurations, implement
/// and execute the query under each, and record the (plan, median cost)
/// observations into the repository.
struct CollectionOptions {
  int configs_per_query = 10;   // Index subsets implemented per query.
  int max_indexes_per_query = 4;
  int cost_samples = 5;
  uint64_t seed = 123;
};

void CollectExecutionData(BenchmarkDatabase* bdb, int database_id,
                          const CollectionOptions& options,
                          ExecutionDataRepository* repo);

/// Convenience: collect over a whole suite.
void CollectSuite(std::vector<std::unique_ptr<BenchmarkDatabase>>* suite,
                  const CollectionOptions& options,
                  ExecutionDataRepository* repo);

}  // namespace aimai

#endif  // AIMAI_WORKLOADS_COLLECTION_H_
