#ifndef AIMAI_WORKLOADS_WORKLOAD_H_
#define AIMAI_WORKLOADS_WORKLOAD_H_

#include <memory>
#include <string>
#include <vector>

#include "exec/execution_cost.h"
#include "exec/executor.h"
#include "optimizer/what_if.h"
#include "tuner/continuous_tuner.h"

namespace aimai {

/// A fully-built experimental database: data, statistics, optimizer,
/// executor, plus the workload queries and the initial configuration C0.
/// One of the fifteen "databases" of the evaluation suite (§7.2).
class BenchmarkDatabase {
 public:
  BenchmarkDatabase(std::string name, uint64_t noise_seed);

  BenchmarkDatabase(const BenchmarkDatabase&) = delete;
  BenchmarkDatabase& operator=(const BenchmarkDatabase&) = delete;

  const std::string& name() const { return db_->name(); }
  Database* db() { return db_.get(); }
  StatisticsCatalog* stats() { return stats_.get(); }
  WhatIfOptimizer* what_if() { return what_if_.get(); }
  IndexManager* indexes() { return indexes_.get(); }
  Executor* executor() { return executor_.get(); }
  ExecutionCostModel* exec_cost() { return exec_cost_.get(); }

  std::vector<QuerySpec>& queries() { return queries_; }
  const std::vector<QuerySpec>& queries() const { return queries_; }

  Configuration& initial_config() { return initial_config_; }

  /// TuningEnv view over this database for the tuner / data collection.
  TuningEnv MakeEnv(int database_id);

  /// Must be called once after tables are loaded (builds optimizer state).
  void FinishLoading();

 private:
  std::unique_ptr<Database> db_;
  std::unique_ptr<StatisticsCatalog> stats_;
  std::unique_ptr<WhatIfOptimizer> what_if_;
  std::unique_ptr<IndexManager> indexes_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<ExecutionCostModel> exec_cost_;
  std::vector<QuerySpec> queries_;
  Configuration initial_config_;
  Rng noise_rng_;
  uint64_t hardware_seed_;
};

/// Shared helpers for the workload generators.
namespace workload_internal {

/// Appends `count` instances of a query template by invoking
/// `instantiate(instance_index, &query)`; names become "<base>#<i>".
template <typename F>
void AddInstances(std::vector<QuerySpec>* queries, const std::string& base,
                  int count, F&& instantiate) {
  for (int i = 0; i < count; ++i) {
    QuerySpec q;
    instantiate(i, &q);
    q.name = base + "#" + std::to_string(i);
    queries->push_back(std::move(q));
  }
}

}  // namespace workload_internal

}  // namespace aimai

#endif  // AIMAI_WORKLOADS_WORKLOAD_H_
