#ifndef AIMAI_WORKLOADS_TPCH_LIKE_H_
#define AIMAI_WORKLOADS_TPCH_LIKE_H_

#include <memory>
#include <string>

#include "workloads/workload.h"

namespace aimai {

/// Builds a TPC-H-style database: the 8-table star/snowflake schema with
/// a parameterized scale multiplier and Zipf skew on foreign keys and
/// low-cardinality attributes (the paper uses a skewed TPC-H generator
/// [54] precisely because skew makes cost estimation hard). Roughly 24
/// query instances over 12 templates: scans with range predicates,
/// 2-6-way joins, aggregations, TOP-N.
///
/// `scale` ~ 1 unit = 6k lineitem rows; zipf_s = 0 gives uniform data.
std::unique_ptr<BenchmarkDatabase> BuildTpchLike(const std::string& name,
                                                 int scale, double zipf_s,
                                                 uint64_t seed);

}  // namespace aimai

#endif  // AIMAI_WORKLOADS_TPCH_LIKE_H_
