#ifndef AIMAI_WORKLOADS_TPCDS_LIKE_H_
#define AIMAI_WORKLOADS_TPCDS_LIKE_H_

#include <memory>
#include <string>

#include "workloads/workload.h"

namespace aimai {

/// Builds a TPC-DS-style database: a snowflake schema with three sales
/// fact tables, correlated dimension attributes (item category implies
/// brand), and deeper join templates (up to 7-way). `scale` ~ 1 unit =
/// 3k store_sales rows; `with_columnstore` puts a clustered columnstore
/// on the fact tables in the initial configuration C0 (the paper's
/// TPC-DS 100g setup starts from columnstore).
std::unique_ptr<BenchmarkDatabase> BuildTpcdsLike(const std::string& name,
                                                  int scale, double zipf_s,
                                                  bool with_columnstore,
                                                  uint64_t seed);

}  // namespace aimai

#endif  // AIMAI_WORKLOADS_TPCDS_LIKE_H_
