#include "workloads/tpch_like.h"

#include "common/check.h"
#include "storage/data_generator.h"
#include "workloads/query_helpers.h"

namespace aimai {

namespace {

using workload_internal::AddInstances;

/// Column lookup that aborts on typos.
int Col(const Database& db, int t, const char* name) {
  const int c = db.table(t).ColumnIndex(name);
  AIMAI_CHECK_MSG(c >= 0, name);
  return c;
}

Predicate PredEq(int t, int c, Value v) {
  Predicate p;
  p.table_id = t;
  p.column_id = c;
  p.op = CmpOp::kEq;
  p.lo = std::move(v);
  return p;
}

Predicate PredCmp(int t, int c, CmpOp op, Value v) {
  Predicate p;
  p.table_id = t;
  p.column_id = c;
  p.op = op;
  p.lo = std::move(v);
  return p;
}

Predicate PredBetween(int t, int c, Value lo, Value hi) {
  Predicate p;
  p.table_id = t;
  p.column_id = c;
  p.op = CmpOp::kBetween;
  p.lo = std::move(lo);
  p.hi = std::move(hi);
  return p;
}

JoinCond Join(int lt, int lc, int rt, int rc) {
  return JoinCond{ColumnRef{lt, lc}, ColumnRef{rt, rc}};
}

}  // namespace

std::unique_ptr<BenchmarkDatabase> BuildTpchLike(const std::string& name,
                                                 int scale, double zipf_s,
                                                 uint64_t seed) {
  // scale multiplies fixed per-table row counts below; zero or negative
  // would silently build empty (or, via the size_t cast, absurdly huge)
  // tables. Fractional scale factors live in the tpch_sf family, which
  // takes a double SF (workloads/tpch_sf.h).
  AIMAI_CHECK_MSG(scale >= 1,
                  "BuildTpchLike: scale must be >= 1 (for fractional "
                  "scale factors use BuildTpchSf)");
  auto bdb = std::make_unique<BenchmarkDatabase>(name, seed ^ 0xfeed);
  Database* db = bdb->db();
  DataGenerator gen(Rng{seed});

  const size_t n_supplier = 60 * static_cast<size_t>(scale);
  const size_t n_customer = 150 * static_cast<size_t>(scale);
  const size_t n_part = 200 * static_cast<size_t>(scale);
  const size_t n_partsupp = 2 * n_part;
  const size_t n_orders = 750 * static_cast<size_t>(scale);
  const size_t n_lineitem = 4 * n_orders;

  // --- region ---
  auto region = std::make_unique<Table>("region");
  gen.FillSequentialInt(region->AddColumn("r_regionkey", DataType::kInt64), 5);
  gen.FillDictString(region->AddColumn("r_name", DataType::kString), 5, 5,
                     0.0, "reg");
  region->SealRows();
  const int t_region = db->AddTable(std::move(region));

  // --- nation ---
  auto nation = std::make_unique<Table>("nation");
  gen.FillSequentialInt(nation->AddColumn("n_nationkey", DataType::kInt64),
                        25);
  gen.FillForeignKey(nation->AddColumn("n_regionkey", DataType::kInt64), 25,
                     5, 0.0);
  gen.FillDictString(nation->AddColumn("n_name", DataType::kString), 25, 25,
                     0.0, "nat");
  nation->SealRows();
  const int t_nation = db->AddTable(std::move(nation));

  // --- supplier ---
  auto supplier = std::make_unique<Table>("supplier");
  gen.FillSequentialInt(supplier->AddColumn("s_suppkey", DataType::kInt64),
                        n_supplier);
  gen.FillForeignKey(supplier->AddColumn("s_nationkey", DataType::kInt64),
                     n_supplier, 25, zipf_s);
  gen.FillUniformDouble(supplier->AddColumn("s_acctbal", DataType::kDouble),
                        n_supplier, -999, 9999);
  supplier->SealRows();
  const int t_supplier = db->AddTable(std::move(supplier));

  // --- customer ---
  auto customer = std::make_unique<Table>("customer");
  Column* c_custkey = customer->AddColumn("c_custkey", DataType::kInt64);
  gen.FillSequentialInt(c_custkey, n_customer);
  gen.FillForeignKey(customer->AddColumn("c_nationkey", DataType::kInt64),
                     n_customer, 25, zipf_s);
  // Market segment is a bucket of the customer key: Zipf-skewed order
  // foreign keys concentrate on low keys, so one segment owns most of the
  // order volume while the optimizer assumes independence.
  gen.FillBucketCorrelatedDict(
      customer->AddColumn("c_mktsegment", DataType::kString), *c_custkey,
      n_customer, 5, zipf_s, 0.15, "seg");
  gen.FillUniformDouble(customer->AddColumn("c_acctbal", DataType::kDouble),
                        n_customer, -999, 9999);
  customer->SealRows();
  const int t_customer = db->AddTable(std::move(customer));

  // --- part ---
  auto part = std::make_unique<Table>("part");
  Column* p_partkey = part->AddColumn("p_partkey", DataType::kInt64);
  gen.FillSequentialInt(p_partkey, n_part);
  gen.FillBucketCorrelatedDict(part->AddColumn("p_brand", DataType::kString),
                               *p_partkey, n_part, 25, zipf_s, 0.2,
                               "brand");
  gen.FillDictString(part->AddColumn("p_type", DataType::kString), n_part, 30,
                     0.0, "type");
  gen.FillUniformInt(part->AddColumn("p_size", DataType::kInt64), n_part, 1,
                     50);
  gen.FillUniformDouble(part->AddColumn("p_retailprice", DataType::kDouble),
                        n_part, 900, 2100);
  part->SealRows();
  const int t_part = db->AddTable(std::move(part));

  // --- partsupp ---
  auto partsupp = std::make_unique<Table>("partsupp");
  gen.FillForeignKey(partsupp->AddColumn("ps_partkey", DataType::kInt64),
                     n_partsupp, static_cast<int64_t>(n_part), zipf_s);
  gen.FillForeignKey(partsupp->AddColumn("ps_suppkey", DataType::kInt64),
                     n_partsupp, static_cast<int64_t>(n_supplier), 0.0);
  gen.FillUniformDouble(
      partsupp->AddColumn("ps_supplycost", DataType::kDouble), n_partsupp, 1,
      1000);
  gen.FillUniformInt(partsupp->AddColumn("ps_availqty", DataType::kInt64),
                     n_partsupp, 1, 9999);
  partsupp->SealRows();
  const int t_partsupp = db->AddTable(std::move(partsupp));

  // --- orders ---
  auto orders = std::make_unique<Table>("orders");
  gen.FillSequentialInt(orders->AddColumn("o_orderkey", DataType::kInt64),
                        n_orders);
  gen.FillForeignKey(orders->AddColumn("o_custkey", DataType::kInt64),
                     n_orders, static_cast<int64_t>(n_customer), zipf_s);
  gen.FillDateInt(orders->AddColumn("o_orderdate", DataType::kInt64),
                  n_orders, 0, 2400);
  gen.FillUniformDouble(orders->AddColumn("o_totalprice", DataType::kDouble),
                        n_orders, 900, 500000);
  gen.FillDictString(orders->AddColumn("o_orderpriority", DataType::kString),
                     n_orders, 5, zipf_s, "prio");
  orders->SealRows();
  const int t_orders = db->AddTable(std::move(orders));

  // --- lineitem ---
  auto lineitem = std::make_unique<Table>("lineitem");
  gen.FillForeignKey(lineitem->AddColumn("l_orderkey", DataType::kInt64),
                     n_lineitem, static_cast<int64_t>(n_orders), zipf_s);
  gen.FillForeignKey(lineitem->AddColumn("l_partkey", DataType::kInt64),
                     n_lineitem, static_cast<int64_t>(n_part), zipf_s);
  gen.FillForeignKey(lineitem->AddColumn("l_suppkey", DataType::kInt64),
                     n_lineitem, static_cast<int64_t>(n_supplier), 0.0);
  Column* l_quantity = lineitem->AddColumn("l_quantity", DataType::kInt64);
  gen.FillUniformInt(l_quantity, n_lineitem, 1, 50);
  // Price correlates with quantity: breaks the independence assumption.
  gen.FillCorrelatedInt(
      lineitem->AddColumn("l_extendedprice", DataType::kInt64), *l_quantity,
      n_lineitem, 1000.0, 5000);
  gen.FillUniformDouble(lineitem->AddColumn("l_discount", DataType::kDouble),
                        n_lineitem, 0.0, 0.1);
  gen.FillDateInt(lineitem->AddColumn("l_shipdate", DataType::kInt64),
                  n_lineitem, 0, 2500);
  // Return flag correlates with the order-key bucket (old orders were
  // returned more), another independence-assumption trap.
  gen.FillBucketCorrelatedDict(
      lineitem->AddColumn("l_returnflag", DataType::kString),
      *lineitem->mutable_column(
          static_cast<size_t>(lineitem->ColumnIndex("l_orderkey"))),
      n_lineitem, 3, zipf_s, 0.25, "rf");
  gen.FillDictString(lineitem->AddColumn("l_shipmode", DataType::kString),
                     n_lineitem, 7, zipf_s, "mode");
  lineitem->SealRows();
  const int t_lineitem = db->AddTable(std::move(lineitem));

  bdb->FinishLoading();

  // ---- Query templates ----
  Rng qrng(seed ^ 0x9111u);
  std::vector<QuerySpec>& queries = bdb->queries();
  const Database& d = *db;

  // Parameters are frequency-weighted (drawn from rows) most of the time,
  // mirroring how applications parameterize queries from their own data.
  auto param_value = [&](int t, const char* col, Rng* r) {
    if (r->Bernoulli(0.65)) {
      return workload_internal::RowValue(d, t, Col(d, t, col), r);
    }
    return workload_internal::DictValue(d, t, Col(d, t, col), r);
  };
  auto seg_value = [&](Rng* r) {
    return param_value(t_customer, "c_mktsegment", r);
  };
  auto brand_value = [&](Rng* r) { return param_value(t_part, "p_brand", r); };
  auto rf_value = [&](Rng* r) {
    return param_value(t_lineitem, "l_returnflag", r);
  };

  // Q1-like: pricing summary over recent lineitems.
  AddInstances(&queries, "q01", 2, [&](int, QuerySpec* q) {
    q->tables = {t_lineitem};
    const int shipdate = Col(d, t_lineitem, "l_shipdate");
    q->predicates = {PredCmp(t_lineitem, shipdate, CmpOp::kLe,
                             Value::Int(qrng.UniformInt(1800, 2450)))};
    q->group_by = {ColumnRef{t_lineitem, Col(d, t_lineitem, "l_returnflag")}};
    q->aggregates = {
        {AggFunc::kSum, ColumnRef{t_lineitem,
                                  Col(d, t_lineitem, "l_extendedprice")}},
        {AggFunc::kAvg, ColumnRef{t_lineitem,
                                  Col(d, t_lineitem, "l_quantity")}},
        {AggFunc::kCount, ColumnRef{}}};
    q->order_by = {
        SortKey{ColumnRef{t_lineitem, Col(d, t_lineitem, "l_returnflag")},
                true}};
  });

  // Q3-like: shipping priority.
  AddInstances(&queries, "q03", 3, [&](int, QuerySpec* q) {
    q->tables = {t_customer, t_orders, t_lineitem};
    const int64_t cutoff = qrng.UniformInt(800, 1800);
    q->predicates = {
        PredEq(t_customer, Col(d, t_customer, "c_mktsegment"),
               seg_value(&qrng)),
        PredCmp(t_orders, Col(d, t_orders, "o_orderdate"), CmpOp::kLt,
                Value::Int(cutoff)),
        PredCmp(t_lineitem, Col(d, t_lineitem, "l_shipdate"), CmpOp::kGt,
                Value::Int(cutoff))};
    q->joins = {Join(t_customer, Col(d, t_customer, "c_custkey"), t_orders,
                     Col(d, t_orders, "o_custkey")),
                Join(t_orders, Col(d, t_orders, "o_orderkey"), t_lineitem,
                     Col(d, t_lineitem, "l_orderkey"))};
    q->group_by = {ColumnRef{t_orders, Col(d, t_orders, "o_orderdate")}};
    q->aggregates = {
        {AggFunc::kSum,
         ColumnRef{t_lineitem, Col(d, t_lineitem, "l_extendedprice")}}};
    q->order_by = {
        SortKey{ColumnRef{t_orders, Col(d, t_orders, "o_orderdate")}, false}};
    q->top_n = 10;
  });

  // Q5-like: local supplier volume (6-way join).
  AddInstances(&queries, "q05", 2, [&](int, QuerySpec* q) {
    q->tables = {t_region, t_nation, t_customer, t_orders, t_lineitem,
                 t_supplier};
    const int64_t from = qrng.UniformInt(0, 1600);
    const Column& rn = d.table(t_region).column(
        static_cast<size_t>(Col(d, t_region, "r_name")));
    q->predicates = {
        PredEq(t_region, Col(d, t_region, "r_name"),
               Value::Str(rn.dictionary()[qrng.Index(rn.dictionary().size())])),
        PredBetween(t_orders, Col(d, t_orders, "o_orderdate"),
                    Value::Int(from), Value::Int(from + 500))};
    q->joins = {
        Join(t_region, Col(d, t_region, "r_regionkey"), t_nation,
             Col(d, t_nation, "n_regionkey")),
        Join(t_nation, Col(d, t_nation, "n_nationkey"), t_customer,
             Col(d, t_customer, "c_nationkey")),
        Join(t_customer, Col(d, t_customer, "c_custkey"), t_orders,
             Col(d, t_orders, "o_custkey")),
        Join(t_orders, Col(d, t_orders, "o_orderkey"), t_lineitem,
             Col(d, t_lineitem, "l_orderkey")),
        Join(t_lineitem, Col(d, t_lineitem, "l_suppkey"), t_supplier,
             Col(d, t_supplier, "s_suppkey"))};
    q->group_by = {ColumnRef{t_nation, Col(d, t_nation, "n_name")}};
    q->aggregates = {
        {AggFunc::kSum,
         ColumnRef{t_lineitem, Col(d, t_lineitem, "l_extendedprice")}}};
    q->order_by = {
        SortKey{ColumnRef{t_nation, Col(d, t_nation, "n_name")}, true}};
  });

  // Q6-like: forecasting revenue change (selective scalar aggregate).
  AddInstances(&queries, "q06", 2, [&](int, QuerySpec* q) {
    q->tables = {t_lineitem};
    const int64_t from = qrng.UniformInt(0, 2000);
    q->predicates = {
        PredBetween(t_lineitem, Col(d, t_lineitem, "l_shipdate"),
                    Value::Int(from), Value::Int(from + 365)),
        PredCmp(t_lineitem, Col(d, t_lineitem, "l_quantity"), CmpOp::kLt,
                Value::Int(qrng.UniformInt(10, 30))),
        PredBetween(t_lineitem, Col(d, t_lineitem, "l_discount"),
                    Value::Real(0.02), Value::Real(0.07))};
    q->aggregates = {
        {AggFunc::kSum,
         ColumnRef{t_lineitem, Col(d, t_lineitem, "l_extendedprice")}}};
  });

  // Q10-like: returned items (4-way join, TOP).
  AddInstances(&queries, "q10", 3, [&](int, QuerySpec* q) {
    q->tables = {t_customer, t_orders, t_lineitem, t_nation};
    const int64_t from = qrng.UniformInt(0, 2100);
    q->predicates = {
        PredBetween(t_orders, Col(d, t_orders, "o_orderdate"),
                    Value::Int(from), Value::Int(from + 200)),
        PredEq(t_lineitem, Col(d, t_lineitem, "l_returnflag"),
               rf_value(&qrng))};
    q->joins = {Join(t_customer, Col(d, t_customer, "c_custkey"), t_orders,
                     Col(d, t_orders, "o_custkey")),
                Join(t_orders, Col(d, t_orders, "o_orderkey"), t_lineitem,
                     Col(d, t_lineitem, "l_orderkey")),
                Join(t_customer, Col(d, t_customer, "c_nationkey"), t_nation,
                     Col(d, t_nation, "n_nationkey"))};
    q->group_by = {ColumnRef{t_customer, Col(d, t_customer, "c_custkey")}};
    q->aggregates = {
        {AggFunc::kSum,
         ColumnRef{t_lineitem, Col(d, t_lineitem, "l_extendedprice")}}};
    q->order_by = {
        SortKey{ColumnRef{t_customer, Col(d, t_customer, "c_custkey")},
                false}};
    q->top_n = 20;
  });

  // Q12-like: shipping modes vs priority.
  AddInstances(&queries, "q12", 3, [&](int, QuerySpec* q) {
    q->tables = {t_orders, t_lineitem};
    const int64_t from = qrng.UniformInt(0, 2100);
    q->predicates = {PredBetween(t_lineitem,
                                 Col(d, t_lineitem, "l_shipdate"),
                                 Value::Int(from), Value::Int(from + 365))};
    q->joins = {Join(t_orders, Col(d, t_orders, "o_orderkey"), t_lineitem,
                     Col(d, t_lineitem, "l_orderkey"))};
    q->group_by = {ColumnRef{t_lineitem, Col(d, t_lineitem, "l_shipmode")}};
    q->aggregates = {{AggFunc::kCount, ColumnRef{}}};
    q->order_by = {
        SortKey{ColumnRef{t_lineitem, Col(d, t_lineitem, "l_shipmode")},
                true}};
  });

  // Q14-like: promotion effect (lineitem x part).
  AddInstances(&queries, "q14", 2, [&](int, QuerySpec* q) {
    q->tables = {t_lineitem, t_part};
    const int64_t from = qrng.UniformInt(0, 2300);
    q->predicates = {PredBetween(t_lineitem,
                                 Col(d, t_lineitem, "l_shipdate"),
                                 Value::Int(from), Value::Int(from + 30))};
    q->joins = {Join(t_lineitem, Col(d, t_lineitem, "l_partkey"), t_part,
                     Col(d, t_part, "p_partkey"))};
    q->aggregates = {
        {AggFunc::kSum,
         ColumnRef{t_lineitem, Col(d, t_lineitem, "l_extendedprice")}}};
  });

  // Q17-like: small-quantity-order revenue (brand point + range).
  AddInstances(&queries, "q17", 3, [&](int, QuerySpec* q) {
    q->tables = {t_lineitem, t_part};
    q->predicates = {
        PredEq(t_part, Col(d, t_part, "p_brand"), brand_value(&qrng)),
        PredCmp(t_lineitem, Col(d, t_lineitem, "l_quantity"), CmpOp::kLt,
                Value::Int(qrng.UniformInt(5, 15)))};
    q->joins = {Join(t_lineitem, Col(d, t_lineitem, "l_partkey"), t_part,
                     Col(d, t_part, "p_partkey"))};
    q->aggregates = {
        {AggFunc::kAvg,
         ColumnRef{t_lineitem, Col(d, t_lineitem, "l_extendedprice")}}};
  });

  // Q19-like: discounted revenue (multi-attribute part filter).
  AddInstances(&queries, "q19", 3, [&](int, QuerySpec* q) {
    q->tables = {t_lineitem, t_part};
    const int64_t size_lo = qrng.UniformInt(1, 30);
    q->predicates = {
        PredEq(t_part, Col(d, t_part, "p_brand"), brand_value(&qrng)),
        PredBetween(t_part, Col(d, t_part, "p_size"), Value::Int(size_lo),
                    Value::Int(size_lo + 10)),
        PredBetween(t_lineitem, Col(d, t_lineitem, "l_quantity"),
                    Value::Int(10), Value::Int(30))};
    q->joins = {Join(t_lineitem, Col(d, t_lineitem, "l_partkey"), t_part,
                     Col(d, t_part, "p_partkey"))};
    q->aggregates = {
        {AggFunc::kSum,
         ColumnRef{t_lineitem, Col(d, t_lineitem, "l_extendedprice")}}};
  });

  // Q11-like: important stock (partsupp x supplier x nation).
  AddInstances(&queries, "q11", 2, [&](int, QuerySpec* q) {
    q->tables = {t_partsupp, t_supplier, t_nation};
    q->predicates = {PredEq(t_nation, Col(d, t_nation, "n_nationkey"),
                            Value::Int(qrng.UniformInt(0, 24)))};
    q->joins = {Join(t_partsupp, Col(d, t_partsupp, "ps_suppkey"),
                     t_supplier, Col(d, t_supplier, "s_suppkey")),
                Join(t_supplier, Col(d, t_supplier, "s_nationkey"), t_nation,
                     Col(d, t_nation, "n_nationkey"))};
    q->group_by = {ColumnRef{t_partsupp, Col(d, t_partsupp, "ps_partkey")}};
    q->aggregates = {
        {AggFunc::kSum,
         ColumnRef{t_partsupp, Col(d, t_partsupp, "ps_supplycost")}}};
  });

  // Correlated-band query: quantity and extended price move together, so
  // the optimizer's independence assumption underestimates the conjunction
  // by roughly the quantity band's selectivity.
  AddInstances(&queries, "qcorr", 3, [&](int, QuerySpec* q) {
    q->tables = {t_lineitem, t_orders};
    const int64_t q0 = qrng.UniformInt(5, 45);
    q->predicates = {
        PredBetween(t_lineitem, Col(d, t_lineitem, "l_quantity"),
                    Value::Int(q0), Value::Int(q0 + 8)),
        PredBetween(t_lineitem, Col(d, t_lineitem, "l_extendedprice"),
                    Value::Int(1000 * q0 - 6000),
                    Value::Int(1000 * (q0 + 8) + 6000))};
    q->joins = {Join(t_lineitem, Col(d, t_lineitem, "l_orderkey"), t_orders,
                     Col(d, t_orders, "o_orderkey"))};
    q->group_by = {ColumnRef{t_lineitem, Col(d, t_lineitem, "l_shipmode")}};
    q->aggregates = {
        {AggFunc::kSum,
         ColumnRef{t_lineitem, Col(d, t_lineitem, "l_extendedprice")}},
        {AggFunc::kCount, ColumnRef{}}};
  });

  // Point lookup on orders (seek-friendly).
  AddInstances(&queries, "qpt", 2, [&](int, QuerySpec* q) {
    q->tables = {t_orders};
    q->predicates = {
        PredEq(t_orders, Col(d, t_orders, "o_custkey"),
               Value::Int(qrng.UniformInt(0,
                                          static_cast<int64_t>(n_customer) -
                                              1)))};
    q->select_columns = {
        ColumnRef{t_orders, Col(d, t_orders, "o_orderdate")},
        ColumnRef{t_orders, Col(d, t_orders, "o_totalprice")}};
    q->order_by = {
        SortKey{ColumnRef{t_orders, Col(d, t_orders, "o_orderdate")}, true}};
  });

  // Range report on customers.
  AddInstances(&queries, "qrg", 2, [&](int, QuerySpec* q) {
    q->tables = {t_customer};
    const double lo = qrng.Uniform(-500, 8000);
    q->predicates = {PredBetween(t_customer,
                                 Col(d, t_customer, "c_acctbal"),
                                 Value::Real(lo), Value::Real(lo + 800))};
    q->select_columns = {
        ColumnRef{t_customer, Col(d, t_customer, "c_custkey")},
        ColumnRef{t_customer, Col(d, t_customer, "c_acctbal")}};
    q->order_by = {
        SortKey{ColumnRef{t_customer, Col(d, t_customer, "c_acctbal")},
                false}};
    q->top_n = 50;
  });

  return bdb;
}

}  // namespace aimai
