#include "workloads/tpch_sf.h"

#include <cmath>

#include "common/check.h"
#include "storage/data_generator.h"
#include "workloads/query_helpers.h"

namespace aimai {

namespace {

using workload_internal::AddInstances;
using workload_internal::Col;
using workload_internal::DictValue;
using workload_internal::Join;
using workload_internal::PredBetween;
using workload_internal::PredCmp;
using workload_internal::PredEq;
using workload_internal::RowValue;

// TPC-H's date domain: 1992-01-01 .. 1998-12-31 as day numbers.
constexpr int64_t kDateSpan = 2557;
// Orders stop 151 days before the end of the domain (lineitems ship
// after their order), mirroring the official generator's o_orderdate cap.
constexpr int64_t kOrderDateSpan = kDateSpan - 151;

}  // namespace

size_t TpchSfRows(double sf, double base) {
  const double rows = std::llround(sf * base);
  return rows < 1 ? 1 : static_cast<size_t>(rows);
}

std::unique_ptr<BenchmarkDatabase> BuildTpchSf(const std::string& name,
                                               const TpchSfOptions& options) {
  AIMAI_CHECK_MSG(options.sf > 0.0 && options.sf <= 100.0,
                  "BuildTpchSf: sf must be in (0, 100]");
  AIMAI_CHECK_MSG(options.instances_per_family >= 1,
                  "BuildTpchSf: instances_per_family must be >= 1");
  auto bdb = std::make_unique<BenchmarkDatabase>(name, options.seed ^ 0x5f5f);
  Database* db = bdb->db();

  const double sf = options.sf;
  const double fk_s = options.fk_skew;
  const double attr_s = options.attr_skew;
  const size_t n_supplier = TpchSfRows(sf, kTpchSfSupplierBase);
  const size_t n_customer = TpchSfRows(sf, kTpchSfCustomerBase);
  const size_t n_part = TpchSfRows(sf, kTpchSfPartBase);
  const size_t n_partsupp = TpchSfRows(sf, kTpchSfPartsuppBase);
  const size_t n_orders = TpchSfRows(sf, kTpchSfOrdersBase);
  const size_t n_lineitem = TpchSfRows(sf, kTpchSfLineitemBase);

  // ---- Schema. All columns exist before any fill runs; the fill plan
  // below streams values into them column by column, one task per column,
  // so the peak transient memory beyond the resident database is a single
  // column's working set (per worker thread).
  auto region = std::make_unique<Table>("region");
  Column* r_regionkey = region->AddColumn("r_regionkey", DataType::kInt64);
  Column* r_name = region->AddColumn("r_name", DataType::kString);

  auto nation = std::make_unique<Table>("nation");
  Column* n_nationkey = nation->AddColumn("n_nationkey", DataType::kInt64);
  Column* n_regionkey = nation->AddColumn("n_regionkey", DataType::kInt64);
  Column* n_name = nation->AddColumn("n_name", DataType::kString);

  auto supplier = std::make_unique<Table>("supplier");
  Column* s_suppkey = supplier->AddColumn("s_suppkey", DataType::kInt64);
  Column* s_nationkey = supplier->AddColumn("s_nationkey", DataType::kInt64);
  Column* s_acctbal = supplier->AddColumn("s_acctbal", DataType::kDouble);

  auto customer = std::make_unique<Table>("customer");
  Column* c_custkey = customer->AddColumn("c_custkey", DataType::kInt64);
  Column* c_nationkey = customer->AddColumn("c_nationkey", DataType::kInt64);
  Column* c_mktsegment =
      customer->AddColumn("c_mktsegment", DataType::kString);
  Column* c_acctbal = customer->AddColumn("c_acctbal", DataType::kDouble);

  auto part = std::make_unique<Table>("part");
  Column* p_partkey = part->AddColumn("p_partkey", DataType::kInt64);
  Column* p_name = part->AddColumn("p_name", DataType::kString);
  Column* p_brand = part->AddColumn("p_brand", DataType::kString);
  Column* p_type = part->AddColumn("p_type", DataType::kString);
  Column* p_size = part->AddColumn("p_size", DataType::kInt64);
  Column* p_retailprice =
      part->AddColumn("p_retailprice", DataType::kDouble);

  auto partsupp = std::make_unique<Table>("partsupp");
  Column* ps_partkey = partsupp->AddColumn("ps_partkey", DataType::kInt64);
  Column* ps_suppkey = partsupp->AddColumn("ps_suppkey", DataType::kInt64);
  Column* ps_supplycost =
      partsupp->AddColumn("ps_supplycost", DataType::kDouble);
  Column* ps_availqty = partsupp->AddColumn("ps_availqty", DataType::kInt64);

  auto orders = std::make_unique<Table>("orders");
  Column* o_orderkey = orders->AddColumn("o_orderkey", DataType::kInt64);
  Column* o_custkey = orders->AddColumn("o_custkey", DataType::kInt64);
  Column* o_orderdate = orders->AddColumn("o_orderdate", DataType::kInt64);
  Column* o_totalprice =
      orders->AddColumn("o_totalprice", DataType::kDouble);
  Column* o_orderpriority =
      orders->AddColumn("o_orderpriority", DataType::kString);

  auto lineitem = std::make_unique<Table>("lineitem");
  Column* l_orderkey = lineitem->AddColumn("l_orderkey", DataType::kInt64);
  Column* l_partkey = lineitem->AddColumn("l_partkey", DataType::kInt64);
  Column* l_suppkey = lineitem->AddColumn("l_suppkey", DataType::kInt64);
  Column* l_quantity = lineitem->AddColumn("l_quantity", DataType::kInt64);
  Column* l_extendedprice =
      lineitem->AddColumn("l_extendedprice", DataType::kInt64);
  Column* l_discount = lineitem->AddColumn("l_discount", DataType::kDouble);
  Column* l_tax = lineitem->AddColumn("l_tax", DataType::kDouble);
  Column* l_shipdate = lineitem->AddColumn("l_shipdate", DataType::kInt64);
  Column* l_returnflag =
      lineitem->AddColumn("l_returnflag", DataType::kString);
  Column* l_shipmode = lineitem->AddColumn("l_shipmode", DataType::kString);

  // Exact-capacity reservations up front: multi-million-row appends never
  // pay vector-doubling overshoot (a 2x peak-memory tax at SF-scale).
  supplier->ReserveRows(n_supplier);
  customer->ReserveRows(n_customer);
  part->ReserveRows(n_part);
  partsupp->ReserveRows(n_partsupp);
  orders->ReserveRows(n_orders);
  lineitem->ReserveRows(n_lineitem);

  // ---- Fill plan. Stage one fills every independent column; the barrier
  // orders the three correlated fills after their source columns. Each
  // Add() pins the task's Rng stream by registration position, so this
  // whole build is bit-identical whether `options.pool` is null or wide.
  TableFillPlan plan(options.seed);

  plan.Add([=](DataGenerator* g) { g->FillSequentialInt(r_regionkey, 5); });
  plan.Add([=](DataGenerator* g) {
    g->FillDictString(r_name, 5, 5, 0.0, "reg");
  });
  plan.Add([=](DataGenerator* g) { g->FillSequentialInt(n_nationkey, 25); });
  plan.Add([=](DataGenerator* g) {
    g->FillForeignKey(n_regionkey, 25, 5, 0.0);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillDictString(n_name, 25, 25, 0.0, "nat");
  });
  plan.Add([=](DataGenerator* g) {
    g->FillSequentialInt(s_suppkey, n_supplier);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillForeignKey(s_nationkey, n_supplier, 25, fk_s);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillUniformDouble(s_acctbal, n_supplier, -999, 9999);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillSequentialInt(c_custkey, n_customer);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillForeignKey(c_nationkey, n_customer, 25, fk_s);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillUniformDouble(c_acctbal, n_customer, -999, 9999);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillSequentialInt(p_partkey, n_part);
  });
  // SF-scale vocabulary: one name per part. At SF >= 5 this crosses the
  // 10^6-entry mark that used to break the sorted-dictionary invariant.
  plan.Add([=](DataGenerator* g) {
    g->FillDictString(p_name, n_part, static_cast<int64_t>(n_part), 0.0,
                      "part");
  });
  plan.Add([=](DataGenerator* g) {
    g->FillDictString(p_type, n_part, 150, 0.0, "type");
  });
  plan.Add([=](DataGenerator* g) {
    g->FillUniformInt(p_size, n_part, 1, 50);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillUniformDouble(p_retailprice, n_part, 900, 2100);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillForeignKey(ps_partkey, n_partsupp,
                      static_cast<int64_t>(n_part), fk_s);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillForeignKey(ps_suppkey, n_partsupp,
                      static_cast<int64_t>(n_supplier), 0.0);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillUniformDouble(ps_supplycost, n_partsupp, 1, 1000);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillUniformInt(ps_availqty, n_partsupp, 1, 9999);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillSequentialInt(o_orderkey, n_orders);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillForeignKey(o_custkey, n_orders,
                      static_cast<int64_t>(n_customer), fk_s);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillDateInt(o_orderdate, n_orders, 0, kOrderDateSpan);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillUniformDouble(o_totalprice, n_orders, 900, 500000);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillDictString(o_orderpriority, n_orders, 5, attr_s, "prio");
  });
  plan.Add([=](DataGenerator* g) {
    g->FillForeignKey(l_orderkey, n_lineitem,
                      static_cast<int64_t>(n_orders), fk_s);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillForeignKey(l_partkey, n_lineitem,
                      static_cast<int64_t>(n_part), fk_s);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillForeignKey(l_suppkey, n_lineitem,
                      static_cast<int64_t>(n_supplier), 0.0);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillUniformInt(l_quantity, n_lineitem, 1, 50);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillUniformDouble(l_discount, n_lineitem, 0.0, 0.1);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillUniformDouble(l_tax, n_lineitem, 0.0, 0.08);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillDateInt(l_shipdate, n_lineitem, 0, kDateSpan);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillDictString(l_shipmode, n_lineitem, 7, attr_s, "mode");
  });

  plan.Barrier();

  // Correlated columns: optimizer traps at scale. Market segment buckets
  // the customer key (skewed order FKs concentrate on one segment),
  // extended price moves with quantity, and the return flag buckets the
  // order key (old orders were returned more).
  plan.Add([=](DataGenerator* g) {
    g->FillBucketCorrelatedDict(c_mktsegment, *c_custkey, n_customer, 5,
                                attr_s, 0.15, "seg");
  });
  plan.Add([=](DataGenerator* g) {
    g->FillBucketCorrelatedDict(p_brand, *p_partkey, n_part, 25, attr_s,
                                0.2, "brand");
  });
  plan.Add([=](DataGenerator* g) {
    g->FillCorrelatedInt(l_extendedprice, *l_quantity, n_lineitem, 1000.0,
                         5000);
  });
  plan.Add([=](DataGenerator* g) {
    g->FillBucketCorrelatedDict(l_returnflag, *l_orderkey, n_lineitem, 3,
                                attr_s, 0.25, "rf");
  });

  plan.Run(options.pool);

  region->SealRows();
  nation->SealRows();
  supplier->SealRows();
  customer->SealRows();
  part->SealRows();
  partsupp->SealRows();
  orders->SealRows();
  lineitem->SealRows();

  const int t_region = db->AddTable(std::move(region));
  const int t_nation = db->AddTable(std::move(nation));
  const int t_supplier = db->AddTable(std::move(supplier));
  const int t_customer = db->AddTable(std::move(customer));
  const int t_part = db->AddTable(std::move(part));
  const int t_partsupp = db->AddTable(std::move(partsupp));
  const int t_orders = db->AddTable(std::move(orders));
  const int t_lineitem = db->AddTable(std::move(lineitem));
  (void)t_region;
  (void)t_nation;
  (void)t_supplier;
  (void)t_partsupp;

  bdb->FinishLoading();

  // ---- Query families. Substitution parameters are drawn per instance
  // from a stream independent of data generation, frequency-weighted most
  // of the time (applications parameterize queries from their own data).
  Rng qrng(options.seed ^ 0x7a5c);
  std::vector<QuerySpec>& queries = bdb->queries();
  const Database& d = *db;
  const int k = options.instances_per_family;

  auto seg_value = [&](Rng* r) {
    const int c = Col(d, t_customer, "c_mktsegment");
    return r->Bernoulli(0.65) ? RowValue(d, t_customer, c, r)
                              : DictValue(d, t_customer, c, r);
  };

  // Q1-shaped: pricing summary over shipped lineitems (big scan + group).
  AddInstances(&queries, "q01", k, [&](int, QuerySpec* q) {
    q->tables = {t_lineitem};
    q->predicates = {
        PredCmp(t_lineitem, Col(d, t_lineitem, "l_shipdate"), CmpOp::kLe,
                Value::Int(qrng.UniformInt(kDateSpan - 120, kDateSpan - 60)))};
    q->group_by = {ColumnRef{t_lineitem, Col(d, t_lineitem, "l_returnflag")}};
    q->aggregates = {
        {AggFunc::kSum,
         ColumnRef{t_lineitem, Col(d, t_lineitem, "l_extendedprice")}},
        {AggFunc::kAvg, ColumnRef{t_lineitem, Col(d, t_lineitem,
                                                  "l_quantity")}},
        {AggFunc::kCount, ColumnRef{}}};
    q->order_by = {
        SortKey{ColumnRef{t_lineitem, Col(d, t_lineitem, "l_returnflag")},
                true}};
  });

  // Q3-shaped: shipping priority (segment filter + 3-way join + TOP).
  AddInstances(&queries, "q03", k, [&](int, QuerySpec* q) {
    q->tables = {t_customer, t_orders, t_lineitem};
    const int64_t cutoff = qrng.UniformInt(kOrderDateSpan / 3,
                                           kOrderDateSpan - 200);
    q->predicates = {
        PredEq(t_customer, Col(d, t_customer, "c_mktsegment"),
               seg_value(&qrng)),
        PredCmp(t_orders, Col(d, t_orders, "o_orderdate"), CmpOp::kLt,
                Value::Int(cutoff)),
        PredCmp(t_lineitem, Col(d, t_lineitem, "l_shipdate"), CmpOp::kGt,
                Value::Int(cutoff))};
    q->joins = {Join(t_customer, Col(d, t_customer, "c_custkey"), t_orders,
                     Col(d, t_orders, "o_custkey")),
                Join(t_orders, Col(d, t_orders, "o_orderkey"), t_lineitem,
                     Col(d, t_lineitem, "l_orderkey"))};
    q->group_by = {ColumnRef{t_orders, Col(d, t_orders, "o_orderdate")}};
    q->aggregates = {
        {AggFunc::kSum,
         ColumnRef{t_lineitem, Col(d, t_lineitem, "l_extendedprice")}}};
    q->order_by = {
        SortKey{ColumnRef{t_orders, Col(d, t_orders, "o_orderdate")}, false}};
    q->top_n = 10;
  });

  // Q6-shaped: forecasting revenue change (selective conjunctive scan —
  // the classic independence-assumption stress).
  AddInstances(&queries, "q06", k, [&](int, QuerySpec* q) {
    q->tables = {t_lineitem};
    const int64_t from = qrng.UniformInt(0, kDateSpan - 400);
    const double disc = qrng.Uniform(0.02, 0.07);
    q->predicates = {
        PredBetween(t_lineitem, Col(d, t_lineitem, "l_shipdate"),
                    Value::Int(from), Value::Int(from + 365)),
        PredBetween(t_lineitem, Col(d, t_lineitem, "l_discount"),
                    Value::Real(disc), Value::Real(disc + 0.02)),
        PredCmp(t_lineitem, Col(d, t_lineitem, "l_quantity"), CmpOp::kLt,
                Value::Int(qrng.UniformInt(20, 35)))};
    q->aggregates = {
        {AggFunc::kSum,
         ColumnRef{t_lineitem, Col(d, t_lineitem, "l_extendedprice")}}};
  });

  // Q14-shaped: promotion effect (narrow date window x part join).
  AddInstances(&queries, "q14", k, [&](int, QuerySpec* q) {
    q->tables = {t_lineitem, t_part};
    const int64_t from = qrng.UniformInt(0, kDateSpan - 60);
    q->predicates = {
        PredBetween(t_lineitem, Col(d, t_lineitem, "l_shipdate"),
                    Value::Int(from), Value::Int(from + 30))};
    q->joins = {Join(t_lineitem, Col(d, t_lineitem, "l_partkey"), t_part,
                     Col(d, t_part, "p_partkey"))};
    q->aggregates = {
        {AggFunc::kSum,
         ColumnRef{t_lineitem, Col(d, t_lineitem, "l_extendedprice")}}};
  });

  // Seek-friendly selections: a point lookup on orders and a narrow range
  // report on customers — the easy index wins a tuner must still find at
  // scale without regressing the scan-heavy families above.
  AddInstances(&queries, "qpt", k, [&](int, QuerySpec* q) {
    q->tables = {t_orders};
    q->predicates = {
        PredEq(t_orders, Col(d, t_orders, "o_custkey"),
               Value::Int(qrng.UniformInt(
                   0, static_cast<int64_t>(n_customer) - 1)))};
    q->select_columns = {
        ColumnRef{t_orders, Col(d, t_orders, "o_orderdate")},
        ColumnRef{t_orders, Col(d, t_orders, "o_totalprice")}};
    q->order_by = {
        SortKey{ColumnRef{t_orders, Col(d, t_orders, "o_orderdate")}, true}};
  });
  AddInstances(&queries, "qrg", k, [&](int, QuerySpec* q) {
    q->tables = {t_customer};
    const double lo = qrng.Uniform(-500, 8000);
    q->predicates = {PredBetween(t_customer,
                                 Col(d, t_customer, "c_acctbal"),
                                 Value::Real(lo), Value::Real(lo + 400))};
    q->select_columns = {
        ColumnRef{t_customer, Col(d, t_customer, "c_custkey")},
        ColumnRef{t_customer, Col(d, t_customer, "c_acctbal")}};
    q->order_by = {
        SortKey{ColumnRef{t_customer, Col(d, t_customer, "c_acctbal")},
                false}};
    q->top_n = 50;
  });

  return bdb;
}

}  // namespace aimai
