#include "workloads/collection.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "common/check.h"
#include "common/thread_pool.h"
#include "tuner/query_tuner.h"
#include "workloads/customer.h"
#include "workloads/query_stream.h"
#include "workloads/tpcds_like.h"
#include "workloads/tpch_like.h"

namespace aimai {

std::vector<std::unique_ptr<BenchmarkDatabase>> BuildBenchmarkSuite(
    uint64_t seed, int scale_divisor) {
  AIMAI_CHECK(scale_divisor >= 1);
  std::vector<std::unique_ptr<BenchmarkDatabase>> suite;
  const int s10 = std::max(1, 4 / scale_divisor);
  const int s100 = std::max(2, 12 / scale_divisor);

  suite.push_back(BuildTpchLike("tpch_zipf_10", s10, 0.9, seed + 1));
  suite.push_back(BuildTpchLike("tpch_zipf_100", s100, 0.9, seed + 2));
  suite.push_back(
      BuildTpcdsLike("tpcds_10", s10, 0.8, /*with_columnstore=*/false,
                     seed + 3));
  suite.push_back(
      BuildTpcdsLike("tpcds_100", s100, 0.8, /*with_columnstore=*/true,
                     seed + 4));
  for (int c = 1; c <= 11; ++c) {
    CustomerProfile prof = CustomerProfileFor(c);
    if (scale_divisor > 1) {
      prof.max_rows = std::max(prof.min_rows,
                               prof.max_rows /
                                   static_cast<size_t>(scale_divisor));
      prof.num_queries = std::max(6, prof.num_queries / scale_divisor);
    }
    suite.push_back(BuildCustomer("customer" + std::to_string(c), prof,
                                  seed + 10 + static_cast<uint64_t>(c)));
  }
  return suite;
}

std::vector<std::unique_ptr<BenchmarkDatabase>> BuildSmallSuite(
    uint64_t seed) {
  std::vector<std::unique_ptr<BenchmarkDatabase>> suite;
  suite.push_back(BuildTpchLike("tpch_small", 1, 0.9, seed + 1));
  suite.push_back(
      BuildTpcdsLike("tpcds_small", 1, 0.8, /*with_columnstore=*/false,
                     seed + 2));
  CustomerProfile prof = CustomerProfileFor(2);
  prof.max_rows = 6000;
  prof.num_queries = 8;
  suite.push_back(BuildCustomer("customer_small", prof, seed + 3));
  return suite;
}

std::unique_ptr<BenchmarkDatabase> BuildWorkloadByName(
    const std::string& kind, int scale, double sf, uint64_t seed) {
  QueryStreamSpec spec;
  spec.kind = kind;
  spec.scale = scale;
  spec.sf = sf;
  spec.seed = seed;
  auto gen = QueryStreamRegistry::Global().Create(spec);
  if (!gen.ok()) return nullptr;
  return (*gen)->TakeDatabase();
}

void CollectExecutionData(BenchmarkDatabase* bdb, int database_id,
                          const CollectionOptions& options,
                          ExecutionDataRepository* repo) {
  Rng rng(options.seed ^ (static_cast<uint64_t>(database_id) << 20));
  TuningEnv env = bdb->MakeEnv(database_id);
  env.cost_samples = options.cost_samples;

  CandidateGenerator candidates(bdb->db(), bdb->stats());
  QueryLevelTuner::Options qopts;
  qopts.max_new_indexes = options.max_indexes_per_query;
  QueryLevelTuner tuner(bdb->db(), bdb->what_if(), &candidates, qopts);
  // Collection uses the plain optimizer-driven tuner (no ML, no threshold)
  // so training data reflects the configurations a tuner would explore.
  OptimizerComparator comparator(0.0, /*regression_threshold=*/1e9);

  const Configuration& base = bdb->initial_config();

  for (const QuerySpec& query : bdb->queries()) {
    const QueryTuningResult rec = tuner.Tune(query, base, comparator);

    // The index pool the tuner's search would touch: the recommendation
    // plus a few other syntactic candidates it considered and discarded.
    // Including non-recommended candidates matters — during a real search
    // most evaluated configurations are mediocre, and those are exactly
    // the plans whose costs the optimizer mispredicts in learnable ways.
    std::vector<IndexDef> pool = rec.new_indexes;
    {
      std::vector<IndexDef> all = candidates.Generate(query, base);
      rng.Shuffle(&all);
      std::set<std::string> in_pool;
      for (const IndexDef& def : pool) in_pool.insert(def.CanonicalName());
      for (IndexDef& def : all) {
        if (pool.size() >= rec.new_indexes.size() + 3) break;
        if (in_pool.insert(def.CanonicalName()).second) {
          pool.push_back(std::move(def));
        }
      }
    }

    // Enumerate configurations: the base config, the full recommendation,
    // and random subsets of the pool.
    std::vector<Configuration> configs;
    configs.push_back(base);
    if (!pool.empty()) {
      std::set<std::string> seen;
      seen.insert(base.Fingerprint());
      if (!rec.new_indexes.empty()) {
        Configuration full = base;
        for (const IndexDef& def : rec.new_indexes) full.Add(def);
        if (seen.insert(full.Fingerprint()).second) {
          configs.push_back(std::move(full));
        }
      }
      const size_t n_subsets =
          std::min<size_t>(static_cast<size_t>(options.configs_per_query),
                           1ULL << pool.size());
      int attempts = 0;
      while (configs.size() < n_subsets + 2 && attempts < 64) {
        ++attempts;
        Configuration sub = base;
        for (const IndexDef& def : pool) {
          if (rng.Bernoulli(0.4)) sub.Add(def);
        }
        if (seen.insert(sub.Fingerprint()).second) {
          configs.push_back(std::move(sub));
        }
      }
    }

    for (const Configuration& config : configs) {
      TuningEnv::Measurement m = env.ExecuteAndMeasure(query, config);
      env.Record(query, config, std::move(m), repo);
    }
  }
}

void CollectSuite(std::vector<std::unique_ptr<BenchmarkDatabase>>* suite,
                  const CollectionOptions& options,
                  ExecutionDataRepository* repo) {
  for (size_t i = 0; i < suite->size(); ++i) {
    CollectExecutionData((*suite)[i].get(), static_cast<int>(i), options,
                         repo);
  }
}

}  // namespace aimai
