#ifndef AIMAI_WORKLOADS_TPCH_SF_H_
#define AIMAI_WORKLOADS_TPCH_SF_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/thread_pool.h"
#include "workloads/workload.h"

namespace aimai {

/// Knobs for the TPC-H-scale workload family. Unlike the toy `tpch_like`
/// generator (fixed per-table row counts times an integer multiplier),
/// this family takes a *fractional* scale factor and drives the canonical
/// TPC-H cardinalities:
///
///   lineitem ~ SF x 6,000,000      orders   ~ SF x 1,500,000
///   partsupp ~ SF x   800,000      part     ~ SF x   200,000
///   customer ~ SF x   150,000      supplier ~ SF x    10,000
///   nation = 25, region = 5 (fixed)
///
/// so `sf = 0.01` is a ~60k-row lineitem smoke database and `sf = 1` is
/// the full TPC-H SF1 shape. Generation is deterministic and reproducible
/// from `seed`: every column is filled from its own `Rng::Split()` stream
/// scheduled by a `TableFillPlan`, so building with a thread pool is
/// bit-identical to building serially (same table ContentFingerprints).
struct TpchSfOptions {
  /// Fractional scale factor; must be > 0. 0.01 ~ 60k lineitem rows.
  double sf = 0.01;
  /// Zipf skew on foreign keys (order->customer, lineitem->order/part,
  /// partsupp->part): a few parents own most children. 0 = uniform.
  double fk_skew = 0.9;
  /// Zipf skew on low-cardinality attribute dictionaries (priority,
  /// shipmode, segment marginals). 0 = uniform.
  double attr_skew = 0.8;
  /// Base seed for data generation and query parameter substitution.
  uint64_t seed = 42;
  /// Query instances materialized per template family.
  int instances_per_family = 3;
  /// Pool for the per-column parallel fill; nullptr = serial build.
  /// Either way the produced data is bit-identical.
  ThreadPool* pool = nullptr;
};

/// Canonical per-SF base cardinalities (rows at SF = 1).
constexpr double kTpchSfLineitemBase = 6'000'000.0;
constexpr double kTpchSfOrdersBase = 1'500'000.0;
constexpr double kTpchSfPartsuppBase = 800'000.0;
constexpr double kTpchSfPartBase = 200'000.0;
constexpr double kTpchSfCustomerBase = 150'000.0;
constexpr double kTpchSfSupplierBase = 10'000.0;

/// Rows for one table at scale factor `sf` (never below 1).
size_t TpchSfRows(double sf, double base);

/// Builds the TPC-H-scale database plus template-parameterized query
/// families (Q1/Q3/Q6/Q14-shaped, and an index-friendly selection family)
/// with substitution parameters drawn per instance.
std::unique_ptr<BenchmarkDatabase> BuildTpchSf(const std::string& name,
                                               const TpchSfOptions& options);

}  // namespace aimai

#endif  // AIMAI_WORKLOADS_TPCH_SF_H_
