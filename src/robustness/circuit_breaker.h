#ifndef AIMAI_ROBUSTNESS_CIRCUIT_BREAKER_H_
#define AIMAI_ROBUSTNESS_CIRCUIT_BREAKER_H_

#include <cstdint>

namespace aimai {

/// Classic three-state circuit breaker, deterministic for the simulator:
/// the open-state cooldown is measured in `Allow()` calls, not wall time,
/// so breaker transitions replay identically run to run.
///
///   closed     -- failure_threshold consecutive failures --> open
///   open       -- cooldown_calls denied Allow() calls    --> half-open
///   half-open  -- half_open_successes successes          --> closed
///   half-open  -- any failure                            --> open again
class CircuitBreaker {
 public:
  enum class State { kClosed, kOpen, kHalfOpen };

  struct Options {
    int failure_threshold = 3;   // Consecutive failures that trip it.
    int cooldown_calls = 8;      // Denied calls while open before probing.
    int half_open_successes = 2; // Probe successes required to close.
  };

  CircuitBreaker() = default;
  explicit CircuitBreaker(Options options) : options_(options) {}

  /// Whether the protected operation may run now. While open, each denied
  /// call advances the cooldown; once it elapses the breaker half-opens
  /// and lets probes through.
  bool Allow();

  /// Outcome feedback for an allowed call.
  void RecordSuccess();
  void RecordFailure();

  State state() const { return state_; }
  int64_t trips() const { return trips_; }
  int64_t recoveries() const { return recoveries_; }
  const Options& options() const { return options_; }

  const char* StateName() const;

 private:
  void Trip();

  Options options_;
  State state_ = State::kClosed;
  int consecutive_failures_ = 0;
  int cooldown_progress_ = 0;
  int half_open_successes_ = 0;
  int64_t trips_ = 0;
  int64_t recoveries_ = 0;
};

}  // namespace aimai

#endif  // AIMAI_ROBUSTNESS_CIRCUIT_BREAKER_H_
