#include "robustness/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace aimai {
namespace {

Status IoError(const std::string& what, const std::string& path) {
  return Status::Unavailable(what + " '" + path + "': " +
                             std::strerror(errno));
}

/// Writes all of `payload` to `fd`, tolerating short writes.
Status WriteAll(int fd, const std::string& payload, const std::string& path) {
  size_t off = 0;
  while (off < payload.size()) {
    const ssize_t n = ::write(fd, payload.data() + off, payload.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return IoError("failed to write", path);
    }
    off += static_cast<size_t>(n);
  }
  return Status::Ok();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, const std::string& payload,
                       FaultInjector* faults) {
  if (faults != nullptr &&
      faults->ShouldFail(FaultPoint::kTornCheckpointWrite)) {
    // Simulated torn write: half the payload lands at the final path with
    // no rename protection, and "success" is reported — the caller never
    // learns, just like a process that died mid-write. Detection is the
    // reader's job (checksummed framing + quarantine).
    std::ofstream torn(path, std::ios::binary | std::ios::trunc);
    torn.write(payload.data(),
               static_cast<std::streamsize>(payload.size() / 2));
    return Status::Ok();
  }

  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return IoError("failed to create", tmp);
  Status write_status = WriteAll(fd, payload, tmp);
  if (write_status.ok() && ::fsync(fd) != 0) {
    write_status = IoError("failed to fsync", tmp);
  }
  if (::close(fd) != 0 && write_status.ok()) {
    write_status = IoError("failed to close", tmp);
  }
  if (!write_status.ok()) {
    ::unlink(tmp.c_str());
    return write_status;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return IoError("failed to rename into", path);
  }
  // Make the rename durable: fsync the containing directory.
  std::string dir = std::filesystem::path(path).parent_path().string();
  if (dir.empty()) dir = ".";
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);  // Best-effort: some filesystems refuse directory fsync.
    ::close(dfd);
  }
  return Status::Ok();
}

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::DataLoss("cannot open '" + path + "' for reading");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return Status::DataLoss("read failed on '" + path + "'");
  }
  *out = buf.str();
  return Status::Ok();
}

int RemoveStaleTempFiles(const std::string& dir) {
  std::error_code ec;
  int removed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.find(".tmp.") == std::string::npos) continue;
    if (std::filesystem::remove(entry.path(), ec)) ++removed;
  }
  return removed;
}

}  // namespace aimai
