#ifndef AIMAI_ROBUSTNESS_RESILIENCE_H_
#define AIMAI_ROBUSTNESS_RESILIENCE_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"

namespace aimai {

/// Counters the resilient paths accumulate so a tuning run can report what
/// it survived. Logged by the ContinuousTuner and asserted on by the
/// fault-injection tests ("accurate stats" is itself an invariant: a
/// swallowed failure that is not counted is a silent bug).
///
/// This is a thin compatibility shim over the observability registry
/// (src/obs/): the plain fields stay because the fault-injection tests
/// assert them exactly and per-env isolation matters there, but the
/// canonical telemetry pipeline is `PublishDeltaTo`, which lands them in
/// the shared MetricsRegistry under "resilience.*" names. Publication is
/// delta-based, so repeated publishes — or several components publishing
/// the same stats object — never double-count.
struct ResilienceStats {
  // Execution / measurement path (TuningEnv).
  int64_t execution_attempts = 0;   // Executor attempts, incl. retries.
  int64_t execution_retries = 0;    // Extra attempts beyond the first.
  int64_t execution_faults = 0;     // Execution attempts lost to faults.
  int64_t execution_failures = 0;   // Permanent (post-retry) failures.
  int64_t what_if_timeouts = 0;     // Injected/observed optimize timeouts.
  int64_t cost_samples_dropped = 0; // Lost samples within a measurement.
  int64_t degraded_measurements = 0;  // Measurements with < cost_samples.
  double total_backoff_ms = 0;      // Virtual backoff time accounted.

  // Tuning loop (ContinuousTuner).
  int64_t failed_iterations = 0;    // Iterations lost to measurement error.
  int64_t reverts = 0;              // Observed regressions rolled back.
  int64_t reverts_verified = 0;     // Rollbacks re-measured and confirmed.
  int64_t revert_verification_failures = 0;
  int64_t quarantined_recommendations = 0;  // Repeat offenders benched.
  int64_t quarantine_skips = 0;     // Iterations that skipped a benched rec.

  // Telemetry I/O (repository load).
  int64_t records_skipped_corrupt = 0;

  // Comparator circuit breaker (FallbackComparator).
  int64_t breaker_trips = 0;
  int64_t breaker_recoveries = 0;
  int64_t comparator_fallbacks = 0;  // Decisions answered by the fallback.

  void Merge(const ResilienceStats& other);

  /// Multi-line human-readable dump for tuner logs.
  std::string ToString() const;

  /// Adds the growth since the previous publish to `registry`'s
  /// "resilience.*" counters (and the backoff gauge). Idempotent under
  /// repetition: publishing twice with no new events adds zero. No-op
  /// while obs is disabled (the unpublished delta is retained, not lost).
  void PublishDeltaTo(obs::MetricsRegistry* registry);

 private:
  /// Field values as of the last PublishDeltaTo. Not merged by Merge():
  /// merged-in counts are unpublished growth by definition.
  struct Published {
    int64_t counters[17] = {};
    double backoff_ms = 0;
  };
  Published published_;
};

}  // namespace aimai

#endif  // AIMAI_ROBUSTNESS_RESILIENCE_H_
