#include "robustness/fault_injector.h"

#include "common/check.h"

namespace aimai {

const char* FaultPointName(FaultPoint point) {
  switch (point) {
    case FaultPoint::kQueryExecution:
      return "query_execution";
    case FaultPoint::kCostNoiseSpike:
      return "cost_noise_spike";
    case FaultPoint::kWhatIfTimeout:
      return "what_if_timeout";
    case FaultPoint::kTelemetryCorruption:
      return "telemetry_corruption";
    case FaultPoint::kRepositoryIo:
      return "repository_io";
    case FaultPoint::kModelInference:
      return "model_inference";
    case FaultPoint::kJobCrash:
      return "job_crash";
    case FaultPoint::kJobStall:
      return "job_stall";
    case FaultPoint::kTornCheckpointWrite:
      return "torn_checkpoint_write";
    case FaultPoint::kModelPublishFailure:
      return "model_publish_failure";
  }
  return "unknown";
}

void FaultInjector::Reset(uint64_t seed) {
  seed_ = seed;
  prob_.fill(0.0);
  forced_failures_.fill(0);
  checks_.fill(0);
  injected_.fill(0);
  streams_.clear();
  streams_.reserve(kNumFaultPoints);
  for (int p = 0; p < kNumFaultPoints; ++p) {
    // 0x9e3779b97f4a7c15 (golden-ratio) decorrelates adjacent point seeds.
    streams_.emplace_back(seed + 0x9e3779b97f4a7c15ULL *
                                     static_cast<uint64_t>(p + 1));
  }
  enabled_ = false;
}

void FaultInjector::set_probability(FaultPoint point, double prob) {
  AIMAI_CHECK(prob >= 0.0 && prob <= 1.0);
  prob_[Idx(point)] = prob;
  RefreshEnabled();
}

void FaultInjector::FailNext(FaultPoint point, int n) {
  AIMAI_CHECK(n >= 0);
  forced_failures_[Idx(point)] = n;
  RefreshEnabled();
}

void FaultInjector::RefreshEnabled() {
  enabled_ = false;
  for (int p = 0; p < kNumFaultPoints; ++p) {
    if (prob_[static_cast<size_t>(p)] > 0.0 ||
        forced_failures_[static_cast<size_t>(p)] > 0) {
      enabled_ = true;
      return;
    }
  }
}

bool FaultInjector::ShouldFailSlow(FaultPoint point) {
  const size_t i = Idx(point);
  ++checks_[i];
  if (forced_failures_[i] > 0) {
    --forced_failures_[i];
    if (forced_failures_[i] == 0) RefreshEnabled();
    ++injected_[i];
    return true;
  }
  if (prob_[i] <= 0.0) return false;
  if (streams_[i].Bernoulli(prob_[i])) {
    ++injected_[i];
    return true;
  }
  return false;
}

double FaultInjector::SpikeFactor(FaultPoint point, double min_factor,
                                  double max_factor) {
  if (!ShouldFail(point)) return 1.0;
  return streams_[Idx(point)].Uniform(min_factor, max_factor);
}

int64_t FaultInjector::total_injected() const {
  int64_t total = 0;
  for (int64_t n : injected_) total += n;
  return total;
}

}  // namespace aimai
