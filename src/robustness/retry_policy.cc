#include "robustness/retry_policy.h"

#include <cmath>

namespace aimai {

double RetryPolicy::BackoffMs(int failure_count) {
  double wait = options_.initial_backoff_ms *
                std::pow(options_.backoff_multiplier,
                         static_cast<double>(failure_count - 1));
  wait = std::min(wait, options_.max_backoff_ms);
  if (rng_ != nullptr && options_.jitter_fraction > 0.0) {
    const double j = options_.jitter_fraction;
    wait *= rng_->Uniform(1.0 - j, 1.0 + j);
  }
  return std::max(wait, 0.0);
}

}  // namespace aimai
