#include "robustness/circuit_breaker.h"

namespace aimai {

bool CircuitBreaker::Allow() {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (++cooldown_progress_ >= options_.cooldown_calls) {
        state_ = State::kHalfOpen;
        half_open_successes_ = 0;
        // The call that completed the cooldown is still denied; the next
        // one probes. Keeps "cooldown_calls denied calls" exact.
      }
      return false;
    case State::kHalfOpen:
      return true;
  }
  return true;
}

void CircuitBreaker::RecordSuccess() {
  switch (state_) {
    case State::kClosed:
      consecutive_failures_ = 0;
      break;
    case State::kHalfOpen:
      if (++half_open_successes_ >= options_.half_open_successes) {
        state_ = State::kClosed;
        consecutive_failures_ = 0;
        ++recoveries_;
      }
      break;
    case State::kOpen:
      break;  // Feedback from a stale call; ignore.
  }
}

void CircuitBreaker::RecordFailure() {
  switch (state_) {
    case State::kClosed:
      if (++consecutive_failures_ >= options_.failure_threshold) Trip();
      break;
    case State::kHalfOpen:
      Trip();  // A failed probe re-opens immediately.
      break;
    case State::kOpen:
      break;
  }
}

void CircuitBreaker::Trip() {
  state_ = State::kOpen;
  cooldown_progress_ = 0;
  consecutive_failures_ = 0;
  half_open_successes_ = 0;
  ++trips_;
}

const char* CircuitBreaker::StateName() const {
  switch (state_) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

}  // namespace aimai
