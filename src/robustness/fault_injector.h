#ifndef AIMAI_ROBUSTNESS_FAULT_INJECTOR_H_
#define AIMAI_ROBUSTNESS_FAULT_INJECTOR_H_

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"

namespace aimai {

/// The catalog of places where the execution/tuning stack can fail. Each
/// point is a permanent hook: production code asks `ShouldFail(point)` at
/// the moment the real failure would surface, and chaos/regression tests
/// arm the points with probabilities or deterministic schedules.
enum class FaultPoint : int {
  kQueryExecution = 0,    // An execution (or cost sample) is lost.
  kCostNoiseSpike,        // A cost sample spikes (noisy neighbor).
  kWhatIfTimeout,         // What-if optimization exceeds its deadline.
  kTelemetryCorruption,   // A telemetry record is corrupted on write.
  kRepositoryIo,          // Repository save/load stream I/O error.
  kModelInference,        // The ML comparator fails to produce a label.
  // Service-layer points (PR 6 chaos harness).
  kJobCrash,              // A tuning job's attempt dies mid-round.
  kJobStall,              // A tuning job stops making progress (hangs).
  kTornCheckpointWrite,   // A checkpoint write is torn before it lands.
  kModelPublishFailure,   // A model publish fails transiently.
};
inline constexpr int kNumFaultPoints = 10;

const char* FaultPointName(FaultPoint point);

/// Deterministic, seed-driven fault injection. Each fault point draws from
/// its own Rng stream (seeded from the injector seed and the point index),
/// so the schedule at one point is independent of how often other points
/// are consulted: same seed + same per-point call sequence => same faults.
///
/// A default-constructed injector is disabled; `ShouldFail` then costs one
/// predictable branch, which is why the hooks can stay compiled in (see
/// bench_robustness).
class FaultInjector {
 public:
  /// Disabled: every probability 0, nothing ever fails.
  FaultInjector() { Reset(0); }
  explicit FaultInjector(uint64_t seed) { Reset(seed); }

  /// Re-seeds all streams and clears probabilities, schedules and counters.
  void Reset(uint64_t seed);

  /// Arms `point` to fail with probability `prob` per check.
  void set_probability(FaultPoint point, double prob);
  double probability(FaultPoint point) const {
    return prob_[Idx(point)];
  }

  /// Deterministic schedule: the next `n` checks of `point` fail
  /// unconditionally (before any probability draw). Used by retry and
  /// breaker tests that need exact failure counts.
  void FailNext(FaultPoint point, int n);

  /// Consults the fault point. Increments the check counter; returns true
  /// (and counts an injection) when the fault fires.
  bool ShouldFail(FaultPoint point) {
    if (!enabled_) return false;
    return ShouldFailSlow(point);
  }

  /// Multiplicative disturbance for kCostNoiseSpike-style points: 1.0 when
  /// the fault does not fire, otherwise uniform in [min_factor, max_factor]
  /// from the point's own stream.
  double SpikeFactor(FaultPoint point, double min_factor = 2.0,
                     double max_factor = 8.0);

  int64_t checks(FaultPoint point) const { return checks_[Idx(point)]; }
  int64_t injected(FaultPoint point) const { return injected_[Idx(point)]; }
  int64_t total_injected() const;

 private:
  static size_t Idx(FaultPoint p) { return static_cast<size_t>(p); }
  bool ShouldFailSlow(FaultPoint point);
  void RefreshEnabled();

  bool enabled_ = false;
  uint64_t seed_ = 0;
  std::array<double, kNumFaultPoints> prob_{};
  std::array<int, kNumFaultPoints> forced_failures_{};
  std::array<int64_t, kNumFaultPoints> checks_{};
  std::array<int64_t, kNumFaultPoints> injected_{};
  // Per-point independent streams, in FaultPoint order.
  std::vector<Rng> streams_;
};

}  // namespace aimai

#endif  // AIMAI_ROBUSTNESS_FAULT_INJECTOR_H_
