#ifndef AIMAI_ROBUSTNESS_RETRY_POLICY_H_
#define AIMAI_ROBUSTNESS_RETRY_POLICY_H_

#include <algorithm>

#include "common/random.h"
#include "common/status.h"

namespace aimai {

/// Bounded-retry configuration. Backoff is *accounted*, not slept: the
/// simulator has no wall clock, so the per-operation budget is enforced on
/// the accumulated virtual backoff and surfaced in the outcome for the
/// caller's telemetry.
struct RetryOptions {
  int max_attempts = 3;             // Total attempts, including the first.
  double initial_backoff_ms = 10.0;
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 1000.0;   // Per-wait clamp.
  double jitter_fraction = 0.2;     // +/- uniform jitter on each wait.
  double total_backoff_budget_ms = 5000.0;  // Per-operation budget.
};

/// Retries a fallible operation with exponential backoff and jitter.
/// Only statuses marked retryable are retried; the first non-retryable
/// error (or the attempt/budget bound) ends the loop.
class RetryPolicy {
 public:
  RetryPolicy() = default;
  /// `rng` supplies jitter; nullptr disables jitter. The rng is only
  /// consulted when a retry actually happens, so fault-free runs draw
  /// nothing and stay bit-identical to the non-retrying code path.
  explicit RetryPolicy(RetryOptions options, Rng* rng = nullptr)
      : options_(options), rng_(rng) {}

  const RetryOptions& options() const { return options_; }

  /// Backoff before retry number `failure_count` (1-based), jittered and
  /// clamped to max_backoff_ms.
  double BackoffMs(int failure_count);

  struct Outcome {
    Status status;                // Final status (OK or the last error).
    int attempts = 0;             // Attempts actually made (>= 1).
    double total_backoff_ms = 0;  // Virtual time spent backing off.
  };

  /// Runs `fn` (signature: `Status fn()`) under the retry policy.
  template <typename Fn>
  Outcome Run(Fn&& fn) {
    Outcome out;
    for (int attempt = 1;; ++attempt) {
      out.attempts = attempt;
      out.status = fn();
      if (out.status.ok() || !out.status.retryable() ||
          attempt >= options_.max_attempts) {
        return out;
      }
      const double wait = BackoffMs(attempt);
      if (out.total_backoff_ms + wait > options_.total_backoff_budget_ms) {
        out.status = Status::ResourceExhausted(
            "retry backoff budget exhausted: " + out.status.ToString());
        return out;
      }
      out.total_backoff_ms += wait;
    }
  }

 private:
  RetryOptions options_;
  Rng* rng_ = nullptr;
};

}  // namespace aimai

#endif  // AIMAI_ROBUSTNESS_RETRY_POLICY_H_
