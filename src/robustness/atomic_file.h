#ifndef AIMAI_ROBUSTNESS_ATOMIC_FILE_H_
#define AIMAI_ROBUSTNESS_ATOMIC_FILE_H_

#include <string>

#include "common/status.h"
#include "robustness/fault_injector.h"

namespace aimai {

/// Crash-safe file replacement: the payload is written to a sibling
/// temporary file, flushed with fsync, and renamed over `path`; the
/// containing directory is fsynced so the rename itself is durable. A
/// crash at any point leaves either the old file intact or the new file
/// complete — never a torn mix — plus at worst an orphaned `*.tmp.*`
/// sibling, which RemoveStaleTempFiles cleans up.
///
/// `faults` (optional) arms kTornCheckpointWrite: when it fires, the call
/// simulates exactly the failure this function exists to prevent — a torn
/// write landing at the final path (roughly half the payload, no rename
/// protection) — and still returns OK, the way a crashed process would
/// never get to report the error. Readers must detect the damage from
/// their own framing (checksums), which is what the checkpoint journal's
/// quarantine path does.
Status WriteFileAtomic(const std::string& path, const std::string& payload,
                       FaultInjector* faults = nullptr);

/// Reads the whole of `path` into `out`. DataLoss on open/read failure.
Status ReadFileToString(const std::string& path, std::string* out);

/// Deletes `<dir>/*.tmp.*` leftovers from writes that crashed between
/// write and rename. Returns how many were removed; best-effort.
int RemoveStaleTempFiles(const std::string& dir);

}  // namespace aimai

#endif  // AIMAI_ROBUSTNESS_ATOMIC_FILE_H_
