#include "robustness/resilience.h"

#include "common/string_util.h"

namespace aimai {

void ResilienceStats::Merge(const ResilienceStats& other) {
  execution_attempts += other.execution_attempts;
  execution_retries += other.execution_retries;
  execution_faults += other.execution_faults;
  execution_failures += other.execution_failures;
  what_if_timeouts += other.what_if_timeouts;
  cost_samples_dropped += other.cost_samples_dropped;
  degraded_measurements += other.degraded_measurements;
  total_backoff_ms += other.total_backoff_ms;
  failed_iterations += other.failed_iterations;
  reverts += other.reverts;
  reverts_verified += other.reverts_verified;
  revert_verification_failures += other.revert_verification_failures;
  quarantined_recommendations += other.quarantined_recommendations;
  quarantine_skips += other.quarantine_skips;
  records_skipped_corrupt += other.records_skipped_corrupt;
  breaker_trips += other.breaker_trips;
  breaker_recoveries += other.breaker_recoveries;
  comparator_fallbacks += other.comparator_fallbacks;
}

std::string ResilienceStats::ToString() const {
  return StrFormat(
      "resilience: exec attempts=%lld retries=%lld faults=%lld "
      "failures=%lld "
      "what-if timeouts=%lld samples dropped=%lld degraded=%lld "
      "backoff=%.1fms | iterations failed=%lld reverts=%lld "
      "verified=%lld verify-failures=%lld quarantined=%lld skips=%lld | "
      "telemetry skipped=%lld | breaker trips=%lld recoveries=%lld "
      "fallbacks=%lld",
      static_cast<long long>(execution_attempts),
      static_cast<long long>(execution_retries),
      static_cast<long long>(execution_faults),
      static_cast<long long>(execution_failures),
      static_cast<long long>(what_if_timeouts),
      static_cast<long long>(cost_samples_dropped),
      static_cast<long long>(degraded_measurements), total_backoff_ms,
      static_cast<long long>(failed_iterations),
      static_cast<long long>(reverts),
      static_cast<long long>(reverts_verified),
      static_cast<long long>(revert_verification_failures),
      static_cast<long long>(quarantined_recommendations),
      static_cast<long long>(quarantine_skips),
      static_cast<long long>(records_skipped_corrupt),
      static_cast<long long>(breaker_trips),
      static_cast<long long>(breaker_recoveries),
      static_cast<long long>(comparator_fallbacks));
}

void ResilienceStats::PublishDeltaTo(obs::MetricsRegistry* registry) {
  if (registry == nullptr || !obs::Enabled()) return;
  struct Field {
    const char* name;
    int64_t ResilienceStats::* member;
  };
  // Order fixes each field's slot in published_.counters.
  static constexpr Field kFields[] = {
      {"resilience.execution_attempts", &ResilienceStats::execution_attempts},
      {"resilience.execution_retries", &ResilienceStats::execution_retries},
      {"resilience.execution_faults", &ResilienceStats::execution_faults},
      {"resilience.execution_failures", &ResilienceStats::execution_failures},
      {"resilience.what_if_timeouts", &ResilienceStats::what_if_timeouts},
      {"resilience.cost_samples_dropped",
       &ResilienceStats::cost_samples_dropped},
      {"resilience.degraded_measurements",
       &ResilienceStats::degraded_measurements},
      {"resilience.failed_iterations", &ResilienceStats::failed_iterations},
      {"resilience.reverts", &ResilienceStats::reverts},
      {"resilience.reverts_verified", &ResilienceStats::reverts_verified},
      {"resilience.revert_verification_failures",
       &ResilienceStats::revert_verification_failures},
      {"resilience.quarantined_recommendations",
       &ResilienceStats::quarantined_recommendations},
      {"resilience.quarantine_skips", &ResilienceStats::quarantine_skips},
      {"resilience.records_skipped_corrupt",
       &ResilienceStats::records_skipped_corrupt},
      {"resilience.breaker_trips", &ResilienceStats::breaker_trips},
      {"resilience.breaker_recoveries", &ResilienceStats::breaker_recoveries},
      {"resilience.comparator_fallbacks",
       &ResilienceStats::comparator_fallbacks},
  };
  static_assert(sizeof(kFields) / sizeof(kFields[0]) ==
                sizeof(Published::counters) / sizeof(int64_t));
  for (size_t i = 0; i < sizeof(kFields) / sizeof(kFields[0]); ++i) {
    const int64_t current = this->*kFields[i].member;
    const int64_t delta = current - published_.counters[i];
    if (delta != 0) registry->GetCounter(kFields[i].name)->Add(delta);
    published_.counters[i] = current;
  }
  const double backoff_delta = total_backoff_ms - published_.backoff_ms;
  if (backoff_delta != 0) {
    registry->GetGauge("resilience.total_backoff_ms")->Add(backoff_delta);
  }
  published_.backoff_ms = total_backoff_ms;
}

}  // namespace aimai
