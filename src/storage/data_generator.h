#ifndef AIMAI_STORAGE_DATA_GENERATOR_H_
#define AIMAI_STORAGE_DATA_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/table.h"

namespace aimai {

/// Column-filling primitives used by the workload generators. Every filler
/// appends exactly `n` values to `col`.
///
/// The distributions deliberately include the cases where textbook
/// cardinality estimation goes wrong — Zipf skew breaks the uniformity
/// assumption and `FillCorrelatedInt` breaks the independence assumption —
/// because the paper's premise (Fig. 1) is that the optimizer's estimates
/// are unreliable on real data.
class DataGenerator {
 public:
  explicit DataGenerator(Rng rng) : rng_(rng) {}

  /// Dense primary key 0..n-1.
  void FillSequentialInt(Column* col, size_t n);

  /// Uniform integers in [lo, hi].
  void FillUniformInt(Column* col, size_t n, int64_t lo, int64_t hi);

  /// Zipf-skewed integers over domain [lo, lo+domain-1]; skew s.
  void FillZipfInt(Column* col, size_t n, int64_t lo, int64_t domain,
                   double s);

  /// Foreign key into a parent of `parent_rows` rows; zipf-skewed when
  /// s > 0 (a few parents own most children).
  void FillForeignKey(Column* col, size_t n, int64_t parent_rows, double s);

  /// Uniform doubles in [lo, hi).
  void FillUniformDouble(Column* col, size_t n, double lo, double hi);

  /// Gaussian doubles.
  void FillGaussianDouble(Column* col, size_t n, double mean, double stddev);

  /// Integer column correlated with an existing int column of the same
  /// table: value = slope * src + noise. Breaks independence assumptions
  /// when both columns are filtered.
  void FillCorrelatedInt(Column* col, const Column& src, size_t n,
                         double slope, int64_t noise);

  /// String column from a generated vocabulary of `vocab` distinct words,
  /// drawn zipf-skewed with parameter s (0 = uniform).
  void FillDictString(Column* col, size_t n, int64_t vocab, double s,
                      const std::string& prefix);

  /// String column rank-correlated with an existing numeric column and
  /// with a Zipf-skewed marginal: codes are drawn Zipf(vocab, s), sorted,
  /// and assigned in `src` order (plus a small random flip probability).
  /// Two optimizer traps at once: the heavy code's frequency is badly
  /// underestimated by the 1/NDV point rule, and when `src` is a primary
  /// key that skewed foreign keys concentrate on, filters on this
  /// attribute select exactly the join-heavy rows, breaking the
  /// independence assumption between dimension filters and join skew.
  /// `src_domain` is unused when s > 0 kept for call compatibility.
  void FillBucketCorrelatedDict(Column* col, const Column& src, size_t n,
                                int64_t vocab, double zipf_s,
                                double flip_probability,
                                const std::string& prefix);

  /// Date column: int day numbers in [base, base+span), uniform.
  void FillDateInt(Column* col, size_t n, int64_t base, int64_t span);

  Rng* rng() { return &rng_; }

 private:
  Rng rng_;
};

}  // namespace aimai

#endif  // AIMAI_STORAGE_DATA_GENERATOR_H_
