#ifndef AIMAI_STORAGE_DATA_GENERATOR_H_
#define AIMAI_STORAGE_DATA_GENERATOR_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "storage/table.h"

namespace aimai {

/// Column-filling primitives used by the workload generators. Every filler
/// appends exactly `n` values to `col`.
///
/// The distributions deliberately include the cases where textbook
/// cardinality estimation goes wrong — Zipf skew breaks the uniformity
/// assumption and `FillCorrelatedInt` breaks the independence assumption —
/// because the paper's premise (Fig. 1) is that the optimizer's estimates
/// are unreliable on real data.
class DataGenerator {
 public:
  explicit DataGenerator(Rng rng) : rng_(rng) {}

  /// Dense primary key 0..n-1.
  void FillSequentialInt(Column* col, size_t n);

  /// Uniform integers in [lo, hi].
  void FillUniformInt(Column* col, size_t n, int64_t lo, int64_t hi);

  /// Zipf-skewed integers over domain [lo, lo+domain-1]; skew s.
  void FillZipfInt(Column* col, size_t n, int64_t lo, int64_t domain,
                   double s);

  /// Foreign key into a parent of `parent_rows` rows; zipf-skewed when
  /// s > 0 (a few parents own most children).
  void FillForeignKey(Column* col, size_t n, int64_t parent_rows, double s);

  /// Uniform doubles in [lo, hi).
  void FillUniformDouble(Column* col, size_t n, double lo, double hi);

  /// Gaussian doubles.
  void FillGaussianDouble(Column* col, size_t n, double mean, double stddev);

  /// Integer column correlated with an existing int column of the same
  /// table: value = slope * src + noise. Breaks independence assumptions
  /// when both columns are filtered.
  void FillCorrelatedInt(Column* col, const Column& src, size_t n,
                         double slope, int64_t noise);

  /// String column from a generated vocabulary of `vocab` distinct words,
  /// drawn zipf-skewed with parameter s (0 = uniform).
  void FillDictString(Column* col, size_t n, int64_t vocab, double s,
                      const std::string& prefix);

  /// String column rank-correlated with an existing numeric column and
  /// with a Zipf-skewed marginal: codes are drawn Zipf(vocab, s), sorted,
  /// and assigned in `src` order (plus a small random flip probability).
  /// Two optimizer traps at once: the heavy code's frequency is badly
  /// underestimated by the 1/NDV point rule, and when `src` is a primary
  /// key that skewed foreign keys concentrate on, filters on this
  /// attribute select exactly the join-heavy rows, breaking the
  /// independence assumption between dimension filters and join skew.
  /// `src_domain` is unused when s > 0 kept for call compatibility.
  void FillBucketCorrelatedDict(Column* col, const Column& src, size_t n,
                                int64_t vocab, double zipf_s,
                                double flip_probability,
                                const std::string& prefix);

  /// Date column: int day numbers in [base, base+span), uniform.
  void FillDateInt(Column* col, size_t n, int64_t base, int64_t span);

  Rng* rng() { return &rng_; }

 private:
  Rng rng_;
};

/// A deterministic multi-column fill schedule for the scale-factor
/// generators. Fill tasks are registered in a fixed order; each `Add`
/// draws an independent child stream from the plan's base generator via
/// `Rng::Split()` at *registration* time, so a task's randomness depends
/// only on its registration position — never on which worker thread runs
/// it or in what order the pool schedules tasks. Running the plan over a
/// ThreadPool is therefore bit-identical to running it serially.
///
/// `Barrier()` separates stages: a fill that reads another column (the
/// correlated fills) must be registered after a barrier that follows its
/// source column's fill. Tasks within a stage run concurrently, one task
/// per column, which is the natural parallel grain of a columnar build —
/// each task owns its column and streams values into it chunk by chunk.
class TableFillPlan {
 public:
  explicit TableFillPlan(uint64_t seed) : base_(seed) {}

  /// Registers a fill task for the current stage. The callback receives a
  /// DataGenerator seeded from the plan's stream.
  void Add(std::function<void(DataGenerator*)> fill);

  /// Ends the current stage: tasks registered after this only start once
  /// every earlier task has finished.
  void Barrier();

  /// Runs all registered tasks stage by stage; fans out over `pool` when
  /// it offers real parallelism, runs inline otherwise. Clears the plan.
  void Run(ThreadPool* pool);

  size_t num_tasks() const { return tasks_.size(); }

 private:
  struct Task {
    Rng rng;
    std::function<void(DataGenerator*)> fill;
    size_t stage;
  };

  Rng base_;
  size_t stage_ = 0;
  std::vector<Task> tasks_;
};

}  // namespace aimai

#endif  // AIMAI_STORAGE_DATA_GENERATOR_H_
