#ifndef AIMAI_STORAGE_VALUE_H_
#define AIMAI_STORAGE_VALUE_H_

#include <cstdint>
#include <string>

namespace aimai {

/// Column data types supported by the engine. Strings are dictionary
/// encoded inside columns; a `Value` holding a string carries the raw text.
/// Dates are represented as kInt64 day numbers by the workload generators.
enum class DataType { kInt64, kDouble, kString };

const char* DataTypeName(DataType t);

/// Width in bytes used for size estimation (indexes, bytes-processed
/// feature channels). Strings use a fixed estimated average width.
int64_t DataTypeWidth(DataType t);

/// A single typed scalar. Small enough to pass by value in predicates.
class Value {
 public:
  Value() : type_(DataType::kInt64), i_(0), d_(0) {}
  static Value Int(int64_t v);
  static Value Real(double v);
  static Value Str(std::string v);

  DataType type() const { return type_; }
  int64_t as_int() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Numeric view: ints and doubles compare on the number line.
  double Numeric() const;

  bool operator==(const Value& other) const;
  bool operator<(const Value& other) const;

  std::string ToString() const;

 private:
  DataType type_;
  int64_t i_;
  double d_;
  std::string s_;
};

}  // namespace aimai

#endif  // AIMAI_STORAGE_VALUE_H_
