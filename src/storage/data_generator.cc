#include "storage/data_generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace aimai {

namespace {

/// Zero-pad width for a dictionary of `vocab` entries: enough digits for
/// the largest id, never less than the historical 6 (which keeps every
/// existing small-vocabulary workload byte-identical). A fixed %06lld pad
/// breaks lexicographic order at vocab > 10^6 ("p1000000" < "p999999"),
/// which silently corrupts range-predicate selectivity on dict columns.
int DictPadWidth(int64_t vocab) {
  int digits = 1;
  for (int64_t v = vocab - 1; v >= 10; v /= 10) ++digits;
  return digits < 6 ? 6 : digits;
}

/// Builds the `vocab`-entry dictionary "<prefix><zero-padded id>" and
/// verifies the sorted-order invariant the dictionary encoding relies on
/// (code order == lexicographic order).
std::vector<std::string> BuildSortedDict(int64_t vocab,
                                         const std::string& prefix) {
  const int width = DictPadWidth(vocab);
  std::vector<std::string> dict;
  dict.reserve(static_cast<size_t>(vocab));
  for (int64_t i = 0; i < vocab; ++i) {
    dict.push_back(StrFormat("%s%0*lld", prefix.c_str(), width,
                             static_cast<long long>(i)));
  }
  AIMAI_CHECK_MSG(std::is_sorted(dict.begin(), dict.end()),
                  "generated dictionary is not lexicographically sorted");
  return dict;
}

}  // namespace

void DataGenerator::FillSequentialInt(Column* col, size_t n) {
  col->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    col->AppendInt(static_cast<int64_t>(i));
  }
}

void DataGenerator::FillUniformInt(Column* col, size_t n, int64_t lo,
                                   int64_t hi) {
  col->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    col->AppendInt(rng_.UniformInt(lo, hi));
  }
}

void DataGenerator::FillZipfInt(Column* col, size_t n, int64_t lo,
                                int64_t domain, double s) {
  AIMAI_CHECK(domain >= 1);
  col->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    col->AppendInt(lo + rng_.Zipf(domain, s) - 1);
  }
}

void DataGenerator::FillForeignKey(Column* col, size_t n, int64_t parent_rows,
                                   double s) {
  AIMAI_CHECK(parent_rows >= 1);
  col->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (s > 0.0) {
      col->AppendInt(rng_.Zipf(parent_rows, s) - 1);
    } else {
      col->AppendInt(rng_.UniformInt(0, parent_rows - 1));
    }
  }
}

void DataGenerator::FillUniformDouble(Column* col, size_t n, double lo,
                                      double hi) {
  col->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    col->AppendDouble(rng_.Uniform(lo, hi));
  }
}

void DataGenerator::FillGaussianDouble(Column* col, size_t n, double mean,
                                       double stddev) {
  col->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    col->AppendDouble(rng_.Gaussian(mean, stddev));
  }
}

void DataGenerator::FillCorrelatedInt(Column* col, const Column& src,
                                      size_t n, double slope, int64_t noise) {
  AIMAI_CHECK(src.size() >= n);
  col->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double base = slope * src.NumericAt(i);
    const int64_t jitter = noise > 0 ? rng_.UniformInt(-noise, noise) : 0;
    col->AppendInt(static_cast<int64_t>(std::llround(base)) + jitter);
  }
}

void DataGenerator::FillDictString(Column* col, size_t n, int64_t vocab,
                                   double s, const std::string& prefix) {
  AIMAI_CHECK(vocab >= 1);
  col->SetDictionary(BuildSortedDict(vocab, prefix));
  col->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int64_t code;
    if (s > 0.0) {
      code = rng_.Zipf(vocab, s) - 1;
    } else {
      code = rng_.UniformInt(0, vocab - 1);
    }
    col->AppendCode(static_cast<int32_t>(code));
  }
}

void DataGenerator::FillBucketCorrelatedDict(Column* col, const Column& src,
                                             size_t n, int64_t vocab,
                                             double zipf_s,
                                             double flip_probability,
                                             const std::string& prefix) {
  AIMAI_CHECK(vocab >= 1);
  AIMAI_CHECK(src.size() >= n);
  col->SetDictionary(BuildSortedDict(vocab, prefix));

  // Draw the marginal distribution (Zipf over the vocabulary), then sort
  // and assign by the rank of `src` so that low src values get the heavy
  // codes. Flips keep the correlation imperfect. Ranks are 32-bit — the
  // scale-factor generators run this on multi-million-row columns, and
  // the temporaries here are the build's peak transient memory.
  AIMAI_CHECK(n < (1ULL << 32));
  std::vector<int32_t> codes(n);
  for (size_t i = 0; i < n; ++i) {
    codes[i] = static_cast<int32_t>(
        rng_.Zipf(vocab, zipf_s > 0 ? zipf_s : 0.6) - 1);
  }
  std::sort(codes.begin(), codes.end());

  std::vector<uint32_t> rank(n);
  for (size_t i = 0; i < n; ++i) rank[i] = static_cast<uint32_t>(i);
  std::sort(rank.begin(), rank.end(), [&src](uint32_t a, uint32_t b) {
    return src.NumericAt(a) < src.NumericAt(b);
  });

  std::vector<int32_t> assigned(n);
  for (size_t pos = 0; pos < n; ++pos) {
    assigned[rank[pos]] = codes[pos];
  }
  col->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int32_t code = assigned[i];
    if (flip_probability > 0 && rng_.Bernoulli(flip_probability)) {
      code = static_cast<int32_t>(rng_.UniformInt(0, vocab - 1));
    }
    col->AppendCode(code);
  }
}

void DataGenerator::FillDateInt(Column* col, size_t n, int64_t base,
                                int64_t span) {
  AIMAI_CHECK(span >= 1);
  col->Reserve(n);
  for (size_t i = 0; i < n; ++i) {
    col->AppendInt(base + rng_.UniformInt(0, span - 1));
  }
}

void TableFillPlan::Add(std::function<void(DataGenerator*)> fill) {
  // The child stream is drawn here, at registration: the Split() sequence
  // is a pure function of registration order, so serial and pooled runs
  // see identical per-task generators.
  tasks_.push_back(Task{base_.Split(), std::move(fill), stage_});
}

void TableFillPlan::Barrier() { ++stage_; }

void TableFillPlan::Run(ThreadPool* pool) {
  size_t begin = 0;
  while (begin < tasks_.size()) {
    size_t end = begin;
    while (end < tasks_.size() && tasks_[end].stage == tasks_[begin].stage) {
      ++end;
    }
    ParallelFor(pool, end - begin, [&](size_t i) {
      Task& task = tasks_[begin + i];
      DataGenerator gen(task.rng);
      task.fill(&gen);
    });
    begin = end;
  }
  tasks_.clear();
  stage_ = 0;
}

}  // namespace aimai
