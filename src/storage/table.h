#ifndef AIMAI_STORAGE_TABLE_H_
#define AIMAI_STORAGE_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/value.h"

namespace aimai {

/// A typed in-memory column. Integer and double columns store raw values;
/// string columns are dictionary encoded with a *sorted* dictionary so that
/// code order equals lexicographic order (range predicates on the codes are
/// correct).
class Column {
 public:
  Column(std::string name, DataType type);

  const std::string& name() const { return name_; }
  DataType type() const { return type_; }
  size_t size() const;

  void AppendInt(int64_t v);
  void AppendDouble(double v);
  /// Appends a string by dictionary code; use `BuildDictionary` first.
  void AppendCode(int32_t code);

  /// Installs the (sorted, unique) dictionary for a string column.
  void SetDictionary(std::vector<std::string> dict);
  const std::vector<std::string>& dictionary() const { return dict_; }

  /// Looks up a string in the dictionary; returns -1 if absent.
  int32_t CodeOf(const std::string& s) const;

  int64_t GetInt(size_t row) const { return ints_[row]; }
  double GetDouble(size_t row) const { return doubles_[row]; }
  int32_t GetCode(size_t row) const { return codes_[row]; }

  /// Raw backing arrays for the vectorized executor's batch kernels
  /// (exactly one is non-empty per column, matching `type()`).
  const int64_t* ints_data() const { return ints_.data(); }
  const double* doubles_data() const { return doubles_.data(); }
  const int32_t* codes_data() const { return codes_.data(); }

  /// Generic accessor that materializes a Value (slow path, used by the
  /// executor for outputs and by tests).
  Value GetValue(size_t row) const;

  /// Numeric view of a cell: raw number for int/double, dictionary code for
  /// strings. This is what predicates, histograms, and indexes operate on,
  /// so all comparisons are cheap.
  double NumericAt(size_t row) const;

  /// Converts a constant of this column's type into its numeric view
  /// (strings map to their dictionary code; absent strings map to the code
  /// of the insertion point minus 0.5 so range predicates stay correct).
  double NumericOf(const Value& v) const;

  /// Reserves capacity for n rows.
  void Reserve(size_t n);

  /// Order-sensitive 64-bit hash of the column's contents (name, type,
  /// dictionary, and every value). Two columns compare equal iff they were
  /// filled with the identical value sequence — the determinism currency
  /// of the scale-factor generators (same seed => same fingerprint,
  /// parallel fill bit-identical to serial).
  uint64_t ContentFingerprint() const;

  int64_t width_bytes() const { return DataTypeWidth(type_); }

 private:
  std::string name_;
  DataType type_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<int32_t> codes_;
  std::vector<std::string> dict_;
};

/// An in-memory table: a set of equal-length columns. Tables are built once
/// by the data generators and then read-only during experiments.
class Table {
 public:
  explicit Table(std::string name) : name_(std::move(name)) {}

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const std::string& name() const { return name_; }
  size_t num_rows() const { return num_rows_; }
  size_t num_columns() const { return columns_.size(); }

  /// Adds a column definition; all columns must be added before rows.
  Column* AddColumn(const std::string& col_name, DataType type);

  Column* mutable_column(size_t i) { return columns_[i].get(); }
  const Column& column(size_t i) const { return *columns_[i]; }

  /// Returns the index of the named column, or -1.
  int ColumnIndex(const std::string& col_name) const;

  /// Must be called after bulk loading to fix the row count (validates all
  /// columns agree).
  void SealRows();

  /// Reserves capacity for `n` rows in every column added so far. Bulk
  /// generators call this once with the exact row count so multi-million
  /// row fills never pay vector-doubling overshoot (a 2x peak-memory tax
  /// at SF-scale).
  void ReserveRows(size_t n);

  /// Combined content hash over all columns (see Column::ContentFingerprint).
  uint64_t ContentFingerprint() const;

  /// Estimated heap size in bytes (for storage budgets & feature channels).
  int64_t SizeBytes() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Column>> columns_;
  std::unordered_map<std::string, int> column_index_;
  size_t num_rows_ = 0;
};

}  // namespace aimai

#endif  // AIMAI_STORAGE_TABLE_H_
