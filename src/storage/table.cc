#include "storage/table.h"

#include <algorithm>

#include "common/check.h"
#include "common/serialize.h"

namespace aimai {

Column::Column(std::string name, DataType type)
    : name_(std::move(name)), type_(type) {}

size_t Column::size() const {
  switch (type_) {
    case DataType::kInt64:
      return ints_.size();
    case DataType::kDouble:
      return doubles_.size();
    case DataType::kString:
      return codes_.size();
  }
  return 0;
}

void Column::AppendInt(int64_t v) {
  AIMAI_CHECK(type_ == DataType::kInt64);
  ints_.push_back(v);
}

void Column::AppendDouble(double v) {
  AIMAI_CHECK(type_ == DataType::kDouble);
  doubles_.push_back(v);
}

void Column::AppendCode(int32_t code) {
  AIMAI_CHECK(type_ == DataType::kString);
  AIMAI_CHECK(code >= 0 && static_cast<size_t>(code) < dict_.size());
  codes_.push_back(code);
}

void Column::SetDictionary(std::vector<std::string> dict) {
  AIMAI_CHECK(type_ == DataType::kString);
  AIMAI_CHECK(std::is_sorted(dict.begin(), dict.end()));
  dict_ = std::move(dict);
}

int32_t Column::CodeOf(const std::string& s) const {
  auto it = std::lower_bound(dict_.begin(), dict_.end(), s);
  if (it == dict_.end() || *it != s) return -1;
  return static_cast<int32_t>(it - dict_.begin());
}

Value Column::GetValue(size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return Value::Int(ints_[row]);
    case DataType::kDouble:
      return Value::Real(doubles_[row]);
    case DataType::kString:
      return Value::Str(dict_[static_cast<size_t>(codes_[row])]);
  }
  return Value();
}

double Column::NumericAt(size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(ints_[row]);
    case DataType::kDouble:
      return doubles_[row];
    case DataType::kString:
      return static_cast<double>(codes_[row]);
  }
  return 0;
}

double Column::NumericOf(const Value& v) const {
  if (type_ != DataType::kString) return v.Numeric();
  AIMAI_CHECK(v.type() == DataType::kString);
  const std::string& s = v.as_string();
  auto it = std::lower_bound(dict_.begin(), dict_.end(), s);
  if (it != dict_.end() && *it == s) {
    return static_cast<double>(it - dict_.begin());
  }
  // Absent string: map between neighboring codes so <,> stay correct.
  return static_cast<double>(it - dict_.begin()) - 0.5;
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      codes_.reserve(n);
      break;
  }
}

uint64_t Column::ContentFingerprint() const {
  // FNV-1a over a tagged byte stream: identity first, then the raw value
  // arrays. Hashing the contiguous vectors (not per-value loops) keeps
  // this linear-scan cheap even on 6M-row columns.
  uint64_t h = Fnv1a64(name_.data(), name_.size());
  const uint8_t tag = static_cast<uint8_t>(type_);
  h ^= Fnv1a64(&tag, 1);
  for (const std::string& word : dict_) {
    h = h * 1099511628211ULL ^ Fnv1a64(word.data(), word.size());
  }
  switch (type_) {
    case DataType::kInt64:
      h ^= Fnv1a64(ints_.data(), ints_.size() * sizeof(int64_t));
      break;
    case DataType::kDouble:
      h ^= Fnv1a64(doubles_.data(), doubles_.size() * sizeof(double));
      break;
    case DataType::kString:
      h ^= Fnv1a64(codes_.data(), codes_.size() * sizeof(int32_t));
      break;
  }
  return h;
}

Column* Table::AddColumn(const std::string& col_name, DataType type) {
  AIMAI_CHECK_MSG(column_index_.find(col_name) == column_index_.end(),
                  "duplicate column");
  column_index_[col_name] = static_cast<int>(columns_.size());
  columns_.push_back(std::make_unique<Column>(col_name, type));
  return columns_.back().get();
}

int Table::ColumnIndex(const std::string& col_name) const {
  auto it = column_index_.find(col_name);
  if (it == column_index_.end()) return -1;
  return it->second;
}

void Table::SealRows() {
  AIMAI_CHECK(!columns_.empty());
  num_rows_ = columns_[0]->size();
  for (const auto& c : columns_) {
    AIMAI_CHECK_MSG(c->size() == num_rows_, "ragged columns");
  }
}

void Table::ReserveRows(size_t n) {
  for (const auto& c : columns_) c->Reserve(n);
}

uint64_t Table::ContentFingerprint() const {
  uint64_t h = Fnv1a64(name_.data(), name_.size());
  for (const auto& c : columns_) {
    h = h * 1099511628211ULL ^ c->ContentFingerprint();
  }
  return h;
}

int64_t Table::SizeBytes() const {
  int64_t bytes = 0;
  for (const auto& c : columns_) {
    bytes += static_cast<int64_t>(num_rows_) * c->width_bytes();
  }
  return bytes;
}

}  // namespace aimai
