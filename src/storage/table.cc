#include "storage/table.h"

#include <algorithm>

#include "common/check.h"

namespace aimai {

Column::Column(std::string name, DataType type)
    : name_(std::move(name)), type_(type) {}

size_t Column::size() const {
  switch (type_) {
    case DataType::kInt64:
      return ints_.size();
    case DataType::kDouble:
      return doubles_.size();
    case DataType::kString:
      return codes_.size();
  }
  return 0;
}

void Column::AppendInt(int64_t v) {
  AIMAI_CHECK(type_ == DataType::kInt64);
  ints_.push_back(v);
}

void Column::AppendDouble(double v) {
  AIMAI_CHECK(type_ == DataType::kDouble);
  doubles_.push_back(v);
}

void Column::AppendCode(int32_t code) {
  AIMAI_CHECK(type_ == DataType::kString);
  AIMAI_CHECK(code >= 0 && static_cast<size_t>(code) < dict_.size());
  codes_.push_back(code);
}

void Column::SetDictionary(std::vector<std::string> dict) {
  AIMAI_CHECK(type_ == DataType::kString);
  AIMAI_CHECK(std::is_sorted(dict.begin(), dict.end()));
  dict_ = std::move(dict);
}

int32_t Column::CodeOf(const std::string& s) const {
  auto it = std::lower_bound(dict_.begin(), dict_.end(), s);
  if (it == dict_.end() || *it != s) return -1;
  return static_cast<int32_t>(it - dict_.begin());
}

Value Column::GetValue(size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return Value::Int(ints_[row]);
    case DataType::kDouble:
      return Value::Real(doubles_[row]);
    case DataType::kString:
      return Value::Str(dict_[static_cast<size_t>(codes_[row])]);
  }
  return Value();
}

double Column::NumericAt(size_t row) const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(ints_[row]);
    case DataType::kDouble:
      return doubles_[row];
    case DataType::kString:
      return static_cast<double>(codes_[row]);
  }
  return 0;
}

double Column::NumericOf(const Value& v) const {
  if (type_ != DataType::kString) return v.Numeric();
  AIMAI_CHECK(v.type() == DataType::kString);
  const std::string& s = v.as_string();
  auto it = std::lower_bound(dict_.begin(), dict_.end(), s);
  if (it != dict_.end() && *it == s) {
    return static_cast<double>(it - dict_.begin());
  }
  // Absent string: map between neighboring codes so <,> stay correct.
  return static_cast<double>(it - dict_.begin()) - 0.5;
}

void Column::Reserve(size_t n) {
  switch (type_) {
    case DataType::kInt64:
      ints_.reserve(n);
      break;
    case DataType::kDouble:
      doubles_.reserve(n);
      break;
    case DataType::kString:
      codes_.reserve(n);
      break;
  }
}

Column* Table::AddColumn(const std::string& col_name, DataType type) {
  AIMAI_CHECK_MSG(column_index_.find(col_name) == column_index_.end(),
                  "duplicate column");
  column_index_[col_name] = static_cast<int>(columns_.size());
  columns_.push_back(std::make_unique<Column>(col_name, type));
  return columns_.back().get();
}

int Table::ColumnIndex(const std::string& col_name) const {
  auto it = column_index_.find(col_name);
  if (it == column_index_.end()) return -1;
  return it->second;
}

void Table::SealRows() {
  AIMAI_CHECK(!columns_.empty());
  num_rows_ = columns_[0]->size();
  for (const auto& c : columns_) {
    AIMAI_CHECK_MSG(c->size() == num_rows_, "ragged columns");
  }
}

int64_t Table::SizeBytes() const {
  int64_t bytes = 0;
  for (const auto& c : columns_) {
    bytes += static_cast<int64_t>(num_rows_) * c->width_bytes();
  }
  return bytes;
}

}  // namespace aimai
