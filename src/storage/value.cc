#include "storage/value.h"

#include "common/check.h"
#include "common/string_util.h"

namespace aimai {

const char* DataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return "INT64";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "STRING";
  }
  return "?";
}

int64_t DataTypeWidth(DataType t) {
  switch (t) {
    case DataType::kInt64:
      return 8;
    case DataType::kDouble:
      return 8;
    case DataType::kString:
      return 24;  // Estimated average var-length string footprint.
  }
  return 8;
}

Value Value::Int(int64_t v) {
  Value out;
  out.type_ = DataType::kInt64;
  out.i_ = v;
  return out;
}

Value Value::Real(double v) {
  Value out;
  out.type_ = DataType::kDouble;
  out.d_ = v;
  return out;
}

Value Value::Str(std::string v) {
  Value out;
  out.type_ = DataType::kString;
  out.s_ = std::move(v);
  return out;
}

int64_t Value::as_int() const {
  AIMAI_CHECK(type_ == DataType::kInt64);
  return i_;
}

double Value::as_double() const {
  AIMAI_CHECK(type_ == DataType::kDouble);
  return d_;
}

const std::string& Value::as_string() const {
  AIMAI_CHECK(type_ == DataType::kString);
  return s_;
}

double Value::Numeric() const {
  switch (type_) {
    case DataType::kInt64:
      return static_cast<double>(i_);
    case DataType::kDouble:
      return d_;
    case DataType::kString:
      AIMAI_CHECK_MSG(false, "Numeric() on string value");
  }
  return 0;
}

bool Value::operator==(const Value& other) const {
  if (type_ == DataType::kString || other.type_ == DataType::kString) {
    AIMAI_CHECK(type_ == other.type_);
    return s_ == other.s_;
  }
  return Numeric() == other.Numeric();
}

bool Value::operator<(const Value& other) const {
  if (type_ == DataType::kString || other.type_ == DataType::kString) {
    AIMAI_CHECK(type_ == other.type_);
    return s_ < other.s_;
  }
  return Numeric() < other.Numeric();
}

std::string Value::ToString() const {
  switch (type_) {
    case DataType::kInt64:
      return StrFormat("%lld", static_cast<long long>(i_));
    case DataType::kDouble:
      return StrFormat("%.4f", d_);
    case DataType::kString:
      return s_;
  }
  return "?";
}

}  // namespace aimai
