#ifndef AIMAI_ML_DECISION_TREE_H_
#define AIMAI_ML_DECISION_TREE_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/serialize.h"
#include "ml/compiled_forest.h"
#include "ml/dataset.h"
#include "ml/model.h"

namespace aimai {

/// Quantile feature binner shared by the tree learners: maps each feature
/// to at most `kMaxBins` ordinal bins. Split search then scans bin
/// histograms instead of sorting, which keeps Random Forests over
/// 100+-dimensional plan-pair features fast.
class FeatureBinner {
 public:
  static constexpr int kMaxBins = 64;

  /// Learns bin edges from (a sample of) the dataset.
  void Fit(const Dataset& data, const std::vector<size_t>& rows, Rng* rng);

  /// Bin index of value `v` for feature `j`.
  uint8_t BinOf(size_t j, double v) const;

  /// Upper edge value of bin `b` for feature `j` (split threshold:
  /// go left iff value <= edge).
  double EdgeValue(size_t j, int b) const;

  int NumBins(size_t j) const {
    return static_cast<int>(edges_[j].size()) + 1;
  }
  size_t num_features() const { return edges_.size(); }

 private:
  // edges_[j] is sorted; bin b covers (edges[b-1], edges[b]].
  std::vector<std::vector<double>> edges_;
};

/// CART decision tree over binned features. Supports Gini-impurity
/// classification and variance-reduction regression; per-split feature
/// subsampling makes it the building block for Random Forests and
/// gradient boosting.
class DecisionTree {
 public:
  struct Options {
    int max_depth = 24;
    size_t min_samples_leaf = 1;
    /// Early-stopping threshold on impurity decrease (the paper's Gini
    /// improvement threshold, default 1e-6).
    double min_impurity_decrease = 1e-6;
    /// Fraction of features considered per split; <= 0 means sqrt(d).
    double feature_fraction = 1.0;
    uint64_t seed = 1;
  };

  DecisionTree() : DecisionTree(Options()) {}
  explicit DecisionTree(Options options) : options_(options) {}

  /// Classification fit over `rows` of `data` (labels from data.Label).
  /// An external binner may be shared across trees; pass nullptr to fit
  /// one internally.
  void FitClassification(const Dataset& data, const std::vector<size_t>& rows,
                         int num_classes, const FeatureBinner* shared_binner);

  /// Regression fit against `targets[i]` for each dataset row i
  /// (targets.size() == data.n(); gradient boosting passes residuals).
  void FitRegression(const Dataset& data, const std::vector<size_t>& rows,
                     const std::vector<double>& targets,
                     const FeatureBinner* shared_binner);

  /// Leaf class distribution (classification trees).
  const std::vector<double>& LeafDistribution(const double* x) const;

  /// Leaf mean (regression trees).
  double PredictValue(const double* x) const;

  size_t num_nodes() const { return nodes_.size(); }
  int num_classes() const { return num_classes_; }

  /// Appends this tree to a compiled forest (`out` must already have the
  /// matching payload stride: num_classes for classification, 1 for
  /// regression). Nodes keep their ids, so traversal visits the same
  /// leaves as FindLeaf.
  void CompileInto(CompiledForest* out) const;

  /// Persists the trained tree (inference state only; refitting requires
  /// the original data).
  void Save(TokenWriter* w) const;
  void Load(TokenReader* r);

 private:
  struct Node {
    int feature = -1;       // -1 for leaves.
    double threshold = 0;   // Go left iff x[feature] <= threshold.
    int left = -1;
    int right = -1;
    std::vector<double> dist;  // Classification leaves.
    double value = 0;          // Regression leaves.
  };

  struct BuildContext;
  int BuildNode(BuildContext* ctx, std::vector<uint32_t>* rows, size_t begin,
                size_t end, int depth);
  int FindLeaf(const double* x) const;

  Options options_;
  int num_classes_ = 0;
  bool is_regression_ = false;
  FeatureBinner own_binner_;
  const FeatureBinner* binner_ = nullptr;
  std::vector<Node> nodes_;
};

}  // namespace aimai

#endif  // AIMAI_ML_DECISION_TREE_H_
