#include "ml/hist_gbt.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "common/check.h"
#include "obs/obs.h"

namespace aimai {

double HistGradientBoosting::Tree::Predict(const double* x) const {
  int id = 0;
  while (nodes[static_cast<size_t>(id)].feature >= 0) {
    const TreeNode& n = nodes[static_cast<size_t>(id)];
    id = x[n.feature] <= n.threshold ? n.left : n.right;
  }
  return nodes[static_cast<size_t>(id)].value;
}

namespace {

struct LeafCandidate {
  int node_id = -1;
  // Row range [begin, end) into the shared row-index array.
  size_t begin = 0;
  size_t end = 0;
  double sum_g = 0;
  double sum_h = 0;
  // Best split found for this leaf.
  double gain = 0;
  int feature = -1;
  int bin = -1;

  bool operator<(const LeafCandidate& o) const { return gain < o.gain; }
};

}  // namespace

HistGradientBoosting::Tree HistGradientBoosting::GrowTree(
    const Dataset& train, const std::vector<uint8_t>& binned,
    const std::vector<size_t>& rows, const std::vector<double>& grad,
    const std::vector<double>& hess) const {
  const size_t d = train.d();
  Tree tree;

  std::vector<uint32_t> order(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    order[i] = static_cast<uint32_t>(rows[i]);
  }

  auto leaf_value = [this](double g, double h) {
    return -g / (h + options_.lambda);
  };
  auto score = [this](double g, double h) {
    return g * g / (h + options_.lambda);
  };

  // Finds the best split for a leaf over all features.
  auto find_best = [&](LeafCandidate* leaf) {
    leaf->gain = 0;
    leaf->feature = -1;
    std::vector<double> hg(FeatureBinner::kMaxBins);
    std::vector<double> hh(FeatureBinner::kMaxBins);
    const double parent = score(leaf->sum_g, leaf->sum_h);
    for (size_t f = 0; f < d; ++f) {
      const int nbins = binner_.NumBins(f);
      if (nbins < 2) continue;
      std::fill(hg.begin(), hg.begin() + nbins, 0.0);
      std::fill(hh.begin(), hh.begin() + nbins, 0.0);
      for (size_t i = leaf->begin; i < leaf->end; ++i) {
        const uint32_t r = order[i];
        const uint8_t b = binned[r * d + f];
        hg[b] += grad[r];
        hh[b] += hess[r];
      }
      double gl = 0, hl = 0;
      for (int b = 0; b + 1 < nbins; ++b) {
        gl += hg[static_cast<size_t>(b)];
        hl += hh[static_cast<size_t>(b)];
        const double gr = leaf->sum_g - gl;
        const double hr = leaf->sum_h - hl;
        if (hl < options_.min_child_hessian ||
            hr < options_.min_child_hessian) {
          continue;
        }
        const double gain = 0.5 * (score(gl, hl) + score(gr, hr) - parent);
        if (gain > leaf->gain) {
          leaf->gain = gain;
          leaf->feature = static_cast<int>(f);
          leaf->bin = b;
        }
      }
    }
  };

  // Root.
  LeafCandidate root;
  root.node_id = 0;
  root.begin = 0;
  root.end = order.size();
  for (uint32_t r : order) {
    root.sum_g += grad[r];
    root.sum_h += hess[r];
  }
  tree.nodes.emplace_back();
  tree.nodes[0].value = leaf_value(root.sum_g, root.sum_h);
  find_best(&root);

  std::priority_queue<LeafCandidate> heap;
  if (root.feature >= 0) heap.push(root);
  int num_leaves = 1;

  while (!heap.empty() && num_leaves < options_.max_leaves) {
    LeafCandidate leaf = heap.top();
    heap.pop();
    if (leaf.feature < 0 || leaf.gain <= 1e-12) continue;

    const size_t f = static_cast<size_t>(leaf.feature);
    auto mid_it =
        std::partition(order.begin() + static_cast<long>(leaf.begin),
                       order.begin() + static_cast<long>(leaf.end),
                       [&](uint32_t r) {
                         return binned[r * d + f] <=
                                static_cast<uint8_t>(leaf.bin);
                       });
    const size_t mid = static_cast<size_t>(mid_it - order.begin());
    if (mid == leaf.begin || mid == leaf.end) continue;

    LeafCandidate left, right;
    left.begin = leaf.begin;
    left.end = mid;
    right.begin = mid;
    right.end = leaf.end;
    for (size_t i = left.begin; i < left.end; ++i) {
      left.sum_g += grad[order[i]];
      left.sum_h += hess[order[i]];
    }
    right.sum_g = leaf.sum_g - left.sum_g;
    right.sum_h = leaf.sum_h - left.sum_h;

    left.node_id = static_cast<int>(tree.nodes.size());
    tree.nodes.emplace_back();
    tree.nodes.back().value = leaf_value(left.sum_g, left.sum_h);
    right.node_id = static_cast<int>(tree.nodes.size());
    tree.nodes.emplace_back();
    tree.nodes.back().value = leaf_value(right.sum_g, right.sum_h);

    TreeNode& parent = tree.nodes[static_cast<size_t>(leaf.node_id)];
    parent.feature = leaf.feature;
    parent.threshold = binner_.EdgeValue(f, leaf.bin);
    parent.left = left.node_id;
    parent.right = right.node_id;
    ++num_leaves;

    find_best(&left);
    if (left.feature >= 0) heap.push(left);
    find_best(&right);
    if (right.feature >= 0) heap.push(right);
  }
  return tree;
}

void HistGradientBoosting::Fit(const Dataset& train) {
  AIMAI_SPAN("ml.lgbm.fit");
  AIMAI_CHECK(train.n() > 0);
  num_classes_ = std::max(2, train.NumClasses());
  const size_t n = train.n();
  const size_t k = static_cast<size_t>(num_classes_);
  const size_t d = train.d();
  trees_.clear();
  Rng rng(options_.seed);

  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  binner_.Fit(train, all, &rng);

  // Pre-bin the whole training set once.
  std::vector<uint8_t> binned(n * d);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      binned[i * d + j] = binner_.BinOf(j, train.At(i, j));
    }
  }

  std::vector<double> scores(n * k, 0.0);
  std::vector<double> grad(n), hess(n), probs(k);

  for (int round = 0; round < options_.num_rounds; ++round) {
    std::vector<size_t> rows;
    if (options_.subsample >= 1.0) {
      rows = all;
    } else {
      rows = rng.SampleWithoutReplacement(
          n, std::max<size_t>(
                 1, static_cast<size_t>(options_.subsample *
                                        static_cast<double>(n))));
    }
    for (size_t c = 0; c < k; ++c) {
      for (size_t i = 0; i < n; ++i) {
        const double* s = &scores[i * k];
        double mx = s[0];
        for (size_t j = 1; j < k; ++j) mx = std::max(mx, s[j]);
        double denom = 0;
        for (size_t j = 0; j < k; ++j) denom += std::exp(s[j] - mx);
        const double p = std::exp(s[c] - mx) / denom;
        const double y = train.Label(i) == static_cast<int>(c) ? 1.0 : 0.0;
        grad[i] = p - y;
        hess[i] = std::max(1e-9, p * (1.0 - p));
      }
      Tree tree = GrowTree(train, binned, rows, grad, hess);
      for (size_t i = 0; i < n; ++i) {
        scores[i * k + c] +=
            options_.learning_rate * tree.Predict(train.Row(i));
      }
      trees_.push_back(std::move(tree));
    }
  }
  Compile();
}

void HistGradientBoosting::Compile() {
  compiled_.Reset(1);
  for (const Tree& t : trees_) {
    compiled_.BeginTree();
    for (const TreeNode& n : t.nodes) {
      if (n.feature >= 0) {
        compiled_.AddSplit(n.feature, n.threshold, n.left, n.right);
      } else {
        compiled_.AddLeaf(&n.value);
      }
    }
  }
  compiled_.Finalize();
}

void HistGradientBoosting::Save(TokenWriter* w) const {
  w->WriteTag("hgbt");
  w->WriteInt(num_classes_);
  w->WriteDouble(options_.learning_rate);
  w->WriteUInt(trees_.size());
  for (const Tree& t : trees_) {
    w->WriteUInt(t.nodes.size());
    for (const TreeNode& n : t.nodes) {
      w->WriteInt(n.feature);
      w->WriteDouble(n.threshold);
      w->WriteInt(n.left);
      w->WriteInt(n.right);
      w->WriteDouble(n.value);
    }
  }
}

void HistGradientBoosting::Load(TokenReader* r) {
  r->ExpectTag("hgbt");
  num_classes_ = static_cast<int>(r->ReadInt());
  options_.learning_rate = r->ReadDouble();
  const uint64_t nt = r->ReadUInt();
  trees_.assign(nt, Tree());
  for (uint64_t t = 0; t < nt; ++t) {
    const uint64_t nn = r->ReadUInt();
    trees_[t].nodes.assign(nn, TreeNode());
    for (uint64_t i = 0; i < nn; ++i) {
      TreeNode& n = trees_[t].nodes[i];
      n.feature = static_cast<int>(r->ReadInt());
      n.threshold = r->ReadDouble();
      n.left = static_cast<int>(r->ReadInt());
      n.right = static_cast<int>(r->ReadInt());
      n.value = r->ReadDouble();
    }
  }
  Compile();
}

void HistGradientBoosting::PredictProbaInto(const double* x,
                                            double* out) const {
  AIMAI_SPAN("ml.lgbm.predict");
  AIMAI_CHECK(!compiled_.empty());
  const size_t k = static_cast<size_t>(num_classes_);
  std::fill(out, out + k, 0.0);
  compiled_.AccumulateRoundRobin(x, k, options_.learning_rate, out);
  SoftmaxInPlace(out, k);
}

void HistGradientBoosting::PredictBatch(const double* rows, size_t n,
                                        size_t stride, double* out) const {
  AIMAI_SPAN("ml.lgbm.predict_batch");
  AIMAI_CHECK(!compiled_.empty());
  const size_t k = static_cast<size_t>(num_classes_);
  std::fill(out, out + n * k, 0.0);
  compiled_.AccumulateRoundRobinBatch(rows, n, stride, k,
                                      options_.learning_rate, out);
  for (size_t i = 0; i < n; ++i) SoftmaxInPlace(out + i * k, k);
}

std::vector<double> HistGradientBoosting::PredictProbaScalar(
    const double* x) const {
  const size_t k = static_cast<size_t>(num_classes_);
  std::vector<double> s(k, 0.0);
  for (size_t t = 0; t < trees_.size(); ++t) {
    s[t % k] += options_.learning_rate * trees_[t].Predict(x);
  }
  SoftmaxInPlace(s.data(), k);
  return s;
}

}  // namespace aimai
