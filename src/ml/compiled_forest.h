#ifndef AIMAI_ML_COMPILED_FOREST_H_
#define AIMAI_ML_COMPILED_FOREST_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace aimai {

/// Flattened structure-of-arrays decision forest. Trained tree ensembles
/// (RandomForest, GradientBoostedTrees, HistGradientBoosting) compile
/// their pointer-per-node trees into five parallel arrays — feature index,
/// split threshold, left/right child offsets, and a leaf-payload offset —
/// traversed iteratively with no virtual dispatch and no per-call
/// allocation. Leaf payloads (class distributions or regression values)
/// live contiguously in `leaf_values_` with a fixed stride.
///
/// The accumulate helpers visit trees in insertion order and add payloads
/// in that order, so every compiled result is bit-identical to the
/// node-chasing scalar path it replaces. The batch variants run tree-outer
/// over a row block and descend the whole block through each tree one
/// level per pass (DescendBlock): the rows' node lookups are independent,
/// so their cache misses overlap instead of serialising on one row's
/// root-to-leaf pointer chain. Per row, contributions still arrive in
/// tree order, so batching never changes the floating-point result.
class CompiledForest {
 public:
  bool empty() const { return roots_.empty(); }
  size_t num_trees() const { return roots_.size(); }
  size_t num_nodes() const { return feature_.size(); }
  size_t payload_stride() const { return payload_stride_; }

  /// Drops all trees and declares the leaf payload width: 1 for regression
  /// values, num_classes for classification leaf distributions.
  void Reset(size_t payload_stride);

  /// Starts a new tree. Subsequent AddSplit/AddLeaf calls append its nodes;
  /// `left`/`right` in AddSplit are node ids local to this tree, in the
  /// order the nodes are appended (node 0 is the root).
  void BeginTree();
  void AddSplit(int feature, double threshold, int left, int right);
  /// Appends a leaf, copying `payload_stride` doubles from `payload`.
  void AddLeaf(const double* payload);

  /// Builds the leaf-encoded child tables the batch accumulators descend
  /// through (a child that is a leaf is stored as `~child`, so reaching a
  /// leaf is visible in the sign bit of the id itself — no extra node
  /// load). Must be called after the last tree is compiled in and before
  /// any Accumulate*Batch call; idempotent.
  void Finalize();

  /// Leaf payload for example `x` in tree `t` (iterative descent).
  const double* Leaf(size_t t, const double* x) const {
    int32_t id = roots_[t];
    while (feature_[static_cast<size_t>(id)] >= 0) {
      const size_t u = static_cast<size_t>(id);
      id = x[feature_[u]] <= threshold_[u] ? left_[u] : right_[u];
    }
    return &leaf_values_[static_cast<size_t>(
        payload_[static_cast<size_t>(id)])];
  }

  /// Bagging accumulation: adds every tree's payload into
  /// out[0..payload_stride), in tree order.
  void AccumulateAll(const double* x, double* out) const {
    for (size_t t = 0; t < roots_.size(); ++t) {
      const double* p = Leaf(t, x);
      for (size_t c = 0; c < payload_stride_; ++c) out[c] += p[c];
    }
  }

  /// Boosting accumulation: out[t % k] += scale * payload[0], in tree
  /// order (trees are round-major with k classes per round).
  void AccumulateRoundRobin(const double* x, size_t k, double scale,
                            double* out) const {
    for (size_t t = 0; t < roots_.size(); ++t) {
      out[t % k] += scale * Leaf(t, x)[0];
    }
  }

  /// Rows per interleaved descent block for bagging ensembles. Deep
  /// (depth ~24) trees want a wide block: late levels leave few rows
  /// active, and a wide block keeps enough independent lookups in flight
  /// to hide cache latency.
  static constexpr size_t kBagBlock = 128;
  /// Rows per block for boosting ensembles. Shallow (depth ~6) trees
  /// rarely starve the pipeline, so the win is keeping the block's row
  /// values L1-resident across the handful of level passes.
  static constexpr size_t kBoostBlock = 32;

  /// Batched AccumulateAll over `n` rows of `stride` doubles each,
  /// accumulating into out[r * payload_stride + c]. Blocks rows
  /// internally and runs tree-outer within each block; after the first
  /// tree, each level-0 sweep also folds in the previous tree's payloads
  /// (same rows, same pass), halving the block sweeps per tree. Per row
  /// the payload still lands before the next tree's, in tree order, so
  /// the sums are bit-identical to the unfused schedule.
  void AccumulateAllBatch(const double* rows, size_t n, size_t stride,
                          double* out) const {
    int32_t ids[kBagBlock];
    int64_t act[kBagBlock];
    const size_t num_trees = roots_.size();
    for (size_t start = 0; start < n; start += kBagBlock) {
      const size_t bn = std::min(kBagBlock, n - start);
      const double* block = rows + start * stride;
      double* bout = out + start * payload_stride_;
      DescendBlock(roots_[0], block, bn, stride, ids, act);
      for (size_t t = 1; t < num_trees; ++t) {
        const size_t ru = static_cast<size_t>(roots_[t]);
        if (feature_[ru] < 0) {
          const int32_t enc = ~roots_[t];
          for (size_t r = 0; r < bn; ++r) {
            AddPayload(ids[r], bout + r * payload_stride_);
            ids[r] = enc;
          }
          continue;
        }
        const size_t f0 = static_cast<size_t>(feature_[ru]);
        const double t0 = threshold_[ru];
        const int64_t d0 = down_[ru];
        const int32_t dl0 = static_cast<int32_t>(d0 >> 32);
        const int32_t dr0 = static_cast<int32_t>(d0);
        size_t na = 0;
        for (size_t r = 0; r < bn; ++r) {
          AddPayload(ids[r], bout + r * payload_stride_);
          const int32_t next = block[r * stride + f0] <= t0 ? dl0 : dr0;
          ids[r] = next;
          act[na] =
              (static_cast<int64_t>(next) << 32) | static_cast<int64_t>(r);
          na += static_cast<size_t>(next >= 0);
        }
        DescendTail(block, stride, ids, act, na);
      }
      for (size_t r = 0; r < bn; ++r) {
        AddPayload(ids[r], bout + r * payload_stride_);
      }
    }
  }

  /// Batched AccumulateRoundRobin: out[r * k + t % k] accumulates.
  /// Boosting trees are shallow, so the per-tree block sweeps dominate;
  /// after the first tree, each level-0 sweep also folds in the previous
  /// tree's payloads (same rows, same pass), halving the sweeps per tree.
  /// Per row the payload still lands before the next tree's, in tree
  /// order, so the sums are bit-identical to the unfused schedule.
  void AccumulateRoundRobinBatch(const double* rows, size_t n, size_t stride,
                                 size_t k, double scale, double* out) const {
    int32_t ids[kBoostBlock];
    int64_t act[kBoostBlock];
    const size_t num_trees = roots_.size();
    for (size_t start = 0; start < n; start += kBoostBlock) {
      const size_t bn = std::min(kBoostBlock, n - start);
      const double* block = rows + start * stride;
      double* bout = out + start * k;
      DescendBlock(roots_[0], block, bn, stride, ids, act);
      for (size_t t = 1; t < num_trees; ++t) {
        const size_t pc = (t - 1) % k;
        const size_t ru = static_cast<size_t>(roots_[t]);
        if (feature_[ru] < 0) {
          const int32_t enc = ~roots_[t];
          for (size_t r = 0; r < bn; ++r) {
            bout[r * k + pc] += scale * LeafValue(ids[r]);
            ids[r] = enc;
          }
          continue;
        }
        const size_t f0 = static_cast<size_t>(feature_[ru]);
        const double t0 = threshold_[ru];
        const int64_t d0 = down_[ru];
        const int32_t dl0 = static_cast<int32_t>(d0 >> 32);
        const int32_t dr0 = static_cast<int32_t>(d0);
        size_t na = 0;
        for (size_t r = 0; r < bn; ++r) {
          bout[r * k + pc] += scale * LeafValue(ids[r]);
          const int32_t next = block[r * stride + f0] <= t0 ? dl0 : dr0;
          ids[r] = next;
          act[na] =
              (static_cast<int64_t>(next) << 32) | static_cast<int64_t>(r);
          na += static_cast<size_t>(next >= 0);
        }
        DescendTail(block, stride, ids, act, na);
      }
      const size_t pc = (num_trees - 1) % k;
      for (size_t r = 0; r < bn; ++r) {
        bout[r * k + pc] += scale * LeafValue(ids[r]);
      }
    }
  }

 private:
  /// Descends a block of rows through one tree, leaving `~leaf_id` (the
  /// Finalize() leaf encoding) in ids[r] for each row. Every pass advances
  /// all still-active rows one level; rows whose new id is negative (a
  /// leaf) are compacted out of the active list branchlessly
  /// (store-then-conditionally-advance), and the child select compiles to
  /// a conditional move. Each active entry packs (node id << 32 | row), so
  /// a pass touches five cache loads per row-level: the entry, the node's
  /// feature/threshold/packed-children, and the row's feature value.
  /// Different rows' loads are independent, so they pipeline — this, not
  /// the flat layout alone, is where the batch speedup over row-at-a-time
  /// descent comes from. Each row follows exactly the comparisons Leaf()
  /// would make, so the chosen leaf (and hence the accumulated result) is
  /// bit-identical.
  void DescendBlock(int32_t root, const double* block, size_t bn,
                    size_t stride, int32_t* ids, int64_t* act) const {
    const size_t ru = static_cast<size_t>(root);
    if (feature_[ru] < 0) {
      const int32_t enc = ~root;
      for (size_t r = 0; r < bn; ++r) ids[r] = enc;
      return;
    }
    // Level 0 fused with the active-list setup: the root's fields are the
    // same for every row, so they are hoisted out of the loop.
    const size_t f0 = static_cast<size_t>(feature_[ru]);
    const double t0 = threshold_[ru];
    const int64_t d0 = down_[ru];
    const int32_t dl0 = static_cast<int32_t>(d0 >> 32);
    const int32_t dr0 = static_cast<int32_t>(d0);
    size_t na = 0;
    for (size_t r = 0; r < bn; ++r) {
      const int32_t next = block[r * stride + f0] <= t0 ? dl0 : dr0;
      ids[r] = next;
      act[na] = (static_cast<int64_t>(next) << 32) | static_cast<int64_t>(r);
      na += static_cast<size_t>(next >= 0);
    }
    DescendTail(block, stride, ids, act, na);
  }

  /// Levels 1+ of DescendBlock: drains the active list built by a level-0
  /// sweep.
  void DescendTail(const double* block, size_t stride, int32_t* ids,
                   int64_t* act, size_t na) const {
    while (na > 0) {
      size_t m = 0;
      for (size_t i = 0; i < na; ++i) {
        const int64_t e = act[i];
        const size_t u = static_cast<size_t>(e >> 32);
        const size_t r = static_cast<uint32_t>(e);
        const int64_t d = down_[u];
        const int32_t go_left = static_cast<int32_t>(d >> 32);
        const int32_t go_right = static_cast<int32_t>(d);
        const int32_t next =
            block[r * stride + static_cast<size_t>(feature_[u])] <=
                    threshold_[u]
                ? go_left
                : go_right;
        ids[r] = next;
        act[m] =
            (static_cast<int64_t>(next) << 32) | static_cast<int64_t>(r);
        m += static_cast<size_t>(next >= 0);
      }
      na = m;
    }
  }

  /// Payload value behind a `~leaf_id`-encoded descent result (stride-1
  /// forests). leaf_scalar_ flattens the payload_ indirection into one
  /// gather.
  double LeafValue(int32_t enc_id) const {
    return leaf_scalar_[static_cast<size_t>(~enc_id)];
  }

  /// Adds the full payload behind a `~leaf_id`-encoded descent result
  /// into out[0..payload_stride). The three-class case (the comparator's
  /// label space) is unrolled — the stride test predicts perfectly, a
  /// data-dependent per-leaf branch would not.
  void AddPayload(int32_t enc_id, double* out) const {
    const double* p = &leaf_values_[static_cast<size_t>(
        payload_[static_cast<size_t>(~enc_id)])];
    if (payload_stride_ == 3) {
      out[0] += p[0];
      out[1] += p[1];
      out[2] += p[2];
      return;
    }
    for (size_t c = 0; c < payload_stride_; ++c) out[c] += p[c];
  }

  size_t payload_stride_ = 1;
  std::vector<int32_t> roots_;      // First node id of each tree.
  std::vector<int32_t> feature_;    // -1 marks a leaf.
  std::vector<double> threshold_;   // Go left iff x[feature] <= threshold.
  std::vector<int32_t> left_;       // Absolute node ids.
  std::vector<int32_t> right_;
  std::vector<int32_t> payload_;    // Leaf offset into leaf_values_.
  std::vector<double> leaf_values_;
  // Finalize() products for the batch path: (left << 32 | right) per
  // split, where a child that is a leaf is stored as ~child, so descent
  // ends when the selected id goes negative; and, for stride-1 forests,
  // each leaf's payload value indexed by node id.
  std::vector<int64_t> down_;
  std::vector<double> leaf_scalar_;
};

}  // namespace aimai

#endif  // AIMAI_ML_COMPILED_FOREST_H_
