#include "ml/metrics.h"

#include <cstdint>

#include "common/check.h"
#include "common/stats.h"
#include "common/string_util.h"

namespace aimai {

ConfusionMatrix::ConfusionMatrix(int num_classes)
    : num_classes_(num_classes),
      counts_(static_cast<size_t>(num_classes * num_classes), 0) {
  AIMAI_CHECK(num_classes >= 2);
}

void ConfusionMatrix::Add(int truth, int predicted) {
  AIMAI_CHECK(truth >= 0 && truth < num_classes_);
  AIMAI_CHECK(predicted >= 0 && predicted < num_classes_);
  counts_[static_cast<size_t>(truth * num_classes_ + predicted)] += 1;
  ++total_;
}

void ConfusionMatrix::Merge(const ConfusionMatrix& other) {
  AIMAI_CHECK(other.num_classes_ == num_classes_);
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
}

int64_t ConfusionMatrix::count(int truth, int predicted) const {
  return counts_[static_cast<size_t>(truth * num_classes_ + predicted)];
}

double ConfusionMatrix::Accuracy() const {
  if (total_ == 0) return 0;
  int64_t correct = 0;
  for (int c = 0; c < num_classes_; ++c) correct += count(c, c);
  return static_cast<double>(correct) / static_cast<double>(total_);
}

ClassMetrics ConfusionMatrix::ForClass(int c) const {
  ClassMetrics m;
  int64_t tp = count(c, c);
  int64_t fp = 0, fn = 0;
  for (int o = 0; o < num_classes_; ++o) {
    if (o == c) continue;
    fp += count(o, c);
    fn += count(c, o);
  }
  m.support = tp + fn;
  m.precision = (tp + fp) > 0
                    ? static_cast<double>(tp) / static_cast<double>(tp + fp)
                    : 0;
  m.recall = (tp + fn) > 0
                 ? static_cast<double>(tp) / static_cast<double>(tp + fn)
                 : 0;
  m.f1 = HarmonicMean2(m.precision, m.recall);
  return m;
}

double ConfusionMatrix::MacroF1() const {
  double sum = 0;
  int n = 0;
  for (int c = 0; c < num_classes_; ++c) {
    const ClassMetrics m = ForClass(c);
    if (m.support > 0) {
      sum += m.f1;
      ++n;
    }
  }
  return n > 0 ? sum / n : 0;
}

std::string ConfusionMatrix::ToString() const {
  std::string out;
  for (int t = 0; t < num_classes_; ++t) {
    for (int p = 0; p < num_classes_; ++p) {
      out += StrFormat("%8lld", static_cast<long long>(count(t, p)));
    }
    out += "\n";
  }
  return out;
}

ConfusionMatrix Evaluate(const std::vector<int>& truth,
                         const std::vector<int>& predicted, int num_classes) {
  AIMAI_CHECK(truth.size() == predicted.size());
  ConfusionMatrix cm(num_classes);
  for (size_t i = 0; i < truth.size(); ++i) cm.Add(truth[i], predicted[i]);
  return cm;
}

}  // namespace aimai
