#ifndef AIMAI_ML_NEURAL_NET_H_
#define AIMAI_ML_NEURAL_NET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/random.h"
#include "ml/matrix.h"
#include "ml/model.h"

namespace aimai {

/// Feed-forward network for the plan-pair classification task (§6.2.1).
///
/// Architectures:
///  - kFullyConnected: plain MLP.
///  - kPartial: the paper's partially-connected design — early layers are
///    block-diagonal over *operator-key groups* (each key's values across
///    channels combine first, no cross-key connections), the last partial
///    layer reduces to one neuron per key, and fully-connected layers
///    follow.
///  - kPartialSkip: kPartial plus identity skip connections on every
///    second fully-connected layer (He-style), the paper's remedy for
///    training deeper stacks.
///
/// Training follows §7.4: tanh activations, clipped-normal init, dropout +
/// L2 regularization, Adam, and a learning rate halved on plateau up to 10
/// times. `LastHiddenFeatures` exposes the final hidden activations so a
/// Random Forest can be stacked on top (Hybrid DNN, §6.2.2); transfer
/// learning retrains only the output layer (§6.2.3).
class NeuralNetClassifier : public Classifier {
 public:
  enum class Architecture { kFullyConnected, kPartial, kPartialSkip };

  struct Options {
    Architecture architecture = Architecture::kPartialSkip;
    /// Feature grouping for the partial layers: `groups[g]` lists input
    /// indices of group g. Inputs not in any group form one extra shared
    /// group. Ignored for kFullyConnected.
    std::vector<std::vector<int>> groups;
    int pc_layers = 2;
    int pc_units_per_group = 3;
    int fc_layers = 6;
    int fc_units = 32;
    int epochs = 30;
    size_t batch_size = 64;
    double learning_rate = 0.01;
    double dropout = 0.2;
    double l2 = 1e-3;
    int plateau_patience = 3;   // Epochs without improvement before halving.
    int max_halvings = 10;
    /// Subsample cap on training examples (speed guard); <=0 = no cap.
    int64_t max_train_examples = 20000;
    uint64_t seed = 29;
  };

  NeuralNetClassifier() : NeuralNetClassifier(Options()) {}
  explicit NeuralNetClassifier(Options options) : options_(options) {}

  void Fit(const Dataset& train) override;
  void PredictProbaInto(const double* x, double* out) const override;
  /// Blocked batch-first forward pass over per-thread scratch matrices:
  /// one MatMul per layer per block instead of per sample. Each row's
  /// result is bit-identical to the scalar path (MatMul computes every
  /// output element independently of the batch size).
  void PredictBatch(const double* rows, size_t n, size_t stride,
                    double* out) const override;

  /// Activations of the last hidden layer for one example.
  std::vector<double> LastHiddenFeatures(const double* x) const;
  /// Batched LastHiddenFeatures: writes n * LastHiddenDim() activations
  /// row-major into `out` (the Hybrid DNN stacks a forest on these).
  void LastHiddenBatch(const double* rows, size_t n, size_t stride,
                       double* out) const;
  size_t LastHiddenDim() const;

  /// Transfer learning: keeps all hidden layers frozen and retrains the
  /// output layer on `data` (§6.2.3). Must be called after Fit.
  void RetrainOutputLayer(const Dataset& data, int epochs);

 private:
  struct Layer {
    Matrix w;                 // in x out.
    std::vector<double> b;    // out.
    Matrix mask;              // Same shape as w; empty = dense.
    bool has_mask = false;
    bool skip = false;        // Identity skip (requires in == out).
    bool output = false;      // Linear output layer (softmax outside).
    // Adam state.
    Matrix mw, vw;
    std::vector<double> mb, vb;
  };

  /// Forward through all layers. `acts[l]` = input of layer l; returns
  /// logits. `tanhs[l]` = tanh(z) of layer l (for backprop); dropout masks
  /// applied when training.
  Matrix Forward(const Matrix& x, std::vector<Matrix>* acts,
                 std::vector<Matrix>* tanhs, std::vector<Matrix>* dropmasks,
                 Rng* rng) const;

  /// Inference-only forward over `n` standardized-on-the-fly rows using
  /// thread-local scratch matrices (no per-call allocation once warm).
  /// Writes n * num_classes probabilities to `probs_out` and/or the
  /// output layer's n * LastHiddenDim inputs to `hidden_out`.
  void InferenceForward(const double* rows, size_t n, size_t stride,
                        double* probs_out, double* hidden_out) const;

  void BuildNetwork(size_t input_dim, Rng* rng);
  void TrainEpochs(const Dataset& data, const std::vector<size_t>& rows,
                   int epochs, bool only_output, Rng* rng);

  Options options_;
  size_t d_ = 0;
  std::vector<double> mean_;
  std::vector<double> inv_std_;
  std::vector<Layer> layers_;
  int64_t adam_step_ = 0;
  double current_lr_ = 0.01;
};

}  // namespace aimai

#endif  // AIMAI_ML_NEURAL_NET_H_
