#include "ml/random_forest.h"

#include <algorithm>

#include "common/check.h"
#include "obs/obs.h"

namespace aimai {

namespace {

std::vector<size_t> Bootstrap(size_t n, double fraction, Rng* rng) {
  const size_t m = std::max<size_t>(
      1, static_cast<size_t>(fraction * static_cast<double>(n)));
  std::vector<size_t> rows(m);
  for (size_t i = 0; i < m; ++i) {
    rows[i] = rng->Index(n);
  }
  return rows;
}

DecisionTree::Options TreeOptions(const RandomForest::Options& o,
                                  uint64_t seed) {
  DecisionTree::Options t;
  t.max_depth = o.max_depth;
  t.min_samples_leaf = o.min_samples_leaf;
  t.min_impurity_decrease = o.min_impurity_decrease;
  t.feature_fraction = o.feature_fraction;
  t.seed = seed;
  return t;
}

}  // namespace

void RandomForest::Fit(const Dataset& train) {
  AIMAI_SPAN("ml.rf.fit");
  AIMAI_CHECK(train.n() > 0);
  num_classes_ = std::max(2, train.NumClasses());
  trees_.clear();
  Rng rng(options_.seed);

  std::vector<size_t> all(train.n());
  for (size_t i = 0; i < train.n(); ++i) all[i] = i;
  binner_.Fit(train, all, &rng);

  for (int t = 0; t < options_.num_trees; ++t) {
    const std::vector<size_t> rows =
        Bootstrap(train.n(), options_.bootstrap_fraction, &rng);
    auto tree =
        std::make_unique<DecisionTree>(TreeOptions(options_, rng.engine()()));
    tree->FitClassification(train, rows, num_classes_, &binner_);
    trees_.push_back(std::move(tree));
  }
  Compile();
}

void RandomForest::Compile() {
  compiled_.Reset(static_cast<size_t>(num_classes_));
  for (const auto& tree : trees_) tree->CompileInto(&compiled_);
  compiled_.Finalize();
}

void RandomForest::PredictProbaInto(const double* x, double* out) const {
  AIMAI_SPAN("ml.rf.predict");
  AIMAI_CHECK(!compiled_.empty());
  const size_t k = static_cast<size_t>(num_classes_);
  std::fill(out, out + k, 0.0);
  compiled_.AccumulateAll(x, out);
  const double inv = 1.0 / static_cast<double>(compiled_.num_trees());
  for (size_t c = 0; c < k; ++c) out[c] *= inv;
}

void RandomForest::PredictBatch(const double* rows, size_t n, size_t stride,
                                double* out) const {
  AIMAI_SPAN("ml.rf.predict_batch");
  AIMAI_CHECK(!compiled_.empty());
  const size_t k = static_cast<size_t>(num_classes_);
  std::fill(out, out + n * k, 0.0);
  compiled_.AccumulateAllBatch(rows, n, stride, out);
  const double inv = 1.0 / static_cast<double>(compiled_.num_trees());
  for (size_t i = 0; i < n * k; ++i) out[i] *= inv;
}

std::vector<double> RandomForest::PredictProbaScalar(const double* x) const {
  AIMAI_CHECK(!trees_.empty());
  std::vector<double> probs(static_cast<size_t>(num_classes_), 0.0);
  for (const auto& tree : trees_) {
    const std::vector<double>& d = tree->LeafDistribution(x);
    for (size_t c = 0; c < probs.size(); ++c) probs[c] += d[c];
  }
  const double inv = 1.0 / static_cast<double>(trees_.size());
  for (double& p : probs) p *= inv;
  return probs;
}

void RandomForestRegressor::Fit(const Dataset& train) {
  AIMAI_CHECK(train.n() > 0);
  trees_.clear();
  Rng rng(options_.seed);

  std::vector<size_t> all(train.n());
  for (size_t i = 0; i < train.n(); ++i) all[i] = i;
  binner_.Fit(train, all, &rng);

  for (int t = 0; t < options_.num_trees; ++t) {
    const std::vector<size_t> rows =
        Bootstrap(train.n(), options_.bootstrap_fraction, &rng);
    auto tree =
        std::make_unique<DecisionTree>(TreeOptions(options_, rng.engine()()));
    tree->FitRegression(train, rows, train.targets(), &binner_);
    trees_.push_back(std::move(tree));
  }
  Compile();
}

void RandomForestRegressor::Compile() {
  compiled_.Reset(1);
  for (const auto& tree : trees_) tree->CompileInto(&compiled_);
  compiled_.Finalize();
}

void RandomForest::Save(TokenWriter* w) const {
  w->WriteTag("rf");
  w->WriteInt(num_classes_);
  w->WriteUInt(trees_.size());
  for (const auto& t : trees_) t->Save(w);
}

void RandomForest::Load(TokenReader* r) {
  r->ExpectTag("rf");
  num_classes_ = static_cast<int>(r->ReadInt());
  const uint64_t n = r->ReadUInt();
  trees_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    auto t = std::make_unique<DecisionTree>();
    t->Load(r);
    trees_.push_back(std::move(t));
  }
  Compile();
}

void RandomForestRegressor::Save(TokenWriter* w) const {
  w->WriteTag("rfreg");
  w->WriteUInt(trees_.size());
  for (const auto& t : trees_) t->Save(w);
}

void RandomForestRegressor::Load(TokenReader* r) {
  r->ExpectTag("rfreg");
  const uint64_t n = r->ReadUInt();
  trees_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    auto t = std::make_unique<DecisionTree>();
    t->Load(r);
    trees_.push_back(std::move(t));
  }
  Compile();
}

double RandomForestRegressor::Predict(const double* x) const {
  AIMAI_CHECK(!compiled_.empty());
  double sum = 0;
  compiled_.AccumulateAll(x, &sum);
  return sum / static_cast<double>(compiled_.num_trees());
}

void RandomForestRegressor::PredictBatch(const double* rows, size_t n,
                                         size_t stride, double* out) const {
  AIMAI_CHECK(!compiled_.empty());
  std::fill(out, out + n, 0.0);
  compiled_.AccumulateAllBatch(rows, n, stride, out);
  // Divide (not multiply-by-reciprocal): the scalar path divides, and
  // the two differ in the last ulp for some sums.
  const double count = static_cast<double>(compiled_.num_trees());
  for (size_t i = 0; i < n; ++i) out[i] /= count;
}

double RandomForestRegressor::PredictScalar(const double* x) const {
  AIMAI_CHECK(!trees_.empty());
  double sum = 0;
  for (const auto& tree : trees_) sum += tree->PredictValue(x);
  return sum / static_cast<double>(trees_.size());
}

}  // namespace aimai
