#include "ml/neural_net.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/obs.h"

namespace aimai {

namespace {

/// Softmax cross-entropy on logits; returns loss and writes dLogits.
double SoftmaxLoss(const Matrix& logits, const std::vector<int>& labels,
                   Matrix* dlogits) {
  const size_t n = logits.rows();
  const size_t k = logits.cols();
  double loss = 0;
  *dlogits = Matrix(n, k);
  for (size_t i = 0; i < n; ++i) {
    const double* z = logits.RowPtr(i);
    double mx = z[0];
    for (size_t c = 1; c < k; ++c) mx = std::max(mx, z[c]);
    double denom = 0;
    for (size_t c = 0; c < k; ++c) denom += std::exp(z[c] - mx);
    const int y = labels[i];
    for (size_t c = 0; c < k; ++c) {
      const double p = std::exp(z[c] - mx) / denom;
      (*dlogits)(i, c) = (p - (static_cast<int>(c) == y ? 1.0 : 0.0)) /
                         static_cast<double>(n);
      if (static_cast<int>(c) == y) loss -= std::log(std::max(1e-12, p));
    }
  }
  return loss / static_cast<double>(n);
}

}  // namespace

void NeuralNetClassifier::BuildNetwork(size_t input_dim, Rng* rng) {
  layers_.clear();
  adam_step_ = 0;
  current_lr_ = options_.learning_rate;

  auto clipped_normal = [rng](double stddev) {
    const double v = rng->Gaussian(0.0, stddev);
    return std::max(-2.0 * stddev, std::min(2.0 * stddev, v));
  };

  auto add_layer = [&](size_t in, size_t out, bool is_output, bool skip) {
    Layer l;
    l.w = Matrix(in, out);
    l.b.assign(out, 0.0);
    l.output = is_output;
    l.skip = skip && in == out;
    const double stddev = 1.0 / std::sqrt(static_cast<double>(in));
    for (size_t i = 0; i < in; ++i) {
      for (size_t j = 0; j < out; ++j) {
        l.w(i, j) = clipped_normal(stddev);
      }
    }
    l.mw = Matrix(in, out);
    l.vw = Matrix(in, out);
    l.mb.assign(out, 0.0);
    l.vb.assign(out, 0.0);
    layers_.push_back(std::move(l));
  };

  size_t width = input_dim;

  if (options_.architecture != Architecture::kFullyConnected &&
      !options_.groups.empty()) {
    // Assemble group structure: explicit groups plus one catch-all group
    // for ungrouped inputs.
    std::vector<std::vector<int>> groups = options_.groups;
    std::vector<bool> grouped(input_dim, false);
    for (const auto& g : groups) {
      for (int i : g) {
        AIMAI_CHECK(i >= 0 && static_cast<size_t>(i) < input_dim);
        grouped[static_cast<size_t>(i)] = true;
      }
    }
    std::vector<int> rest;
    for (size_t i = 0; i < input_dim; ++i) {
      if (!grouped[i]) rest.push_back(static_cast<int>(i));
    }
    if (!rest.empty()) groups.push_back(rest);
    const size_t ng = groups.size();

    // Partial layers: block-diagonal masks. Layer p maps group g's
    // `in_units(g)` inputs to `u` outputs (u = units_per_group; the last
    // partial layer reduces to 1 unit per group).
    std::vector<std::vector<int>> in_positions = groups;
    for (int p = 0; p < options_.pc_layers; ++p) {
      const int u = (p + 1 == options_.pc_layers)
                        ? 1
                        : options_.pc_units_per_group;
      size_t in_dim = width;
      size_t out_dim = ng * static_cast<size_t>(u);
      Layer l;
      l.w = Matrix(in_dim, out_dim);
      l.b.assign(out_dim, 0.0);
      l.mask = Matrix(in_dim, out_dim);
      l.has_mask = true;
      std::vector<std::vector<int>> next_positions(ng);
      for (size_t g = 0; g < ng; ++g) {
        const double stddev =
            1.0 /
            std::sqrt(std::max<double>(1.0, static_cast<double>(
                                                in_positions[g].size())));
        for (int uu = 0; uu < u; ++uu) {
          const size_t out_j = g * static_cast<size_t>(u) +
                               static_cast<size_t>(uu);
          next_positions[g].push_back(static_cast<int>(out_j));
          for (int in_i : in_positions[g]) {
            l.mask(static_cast<size_t>(in_i), out_j) = 1.0;
            l.w(static_cast<size_t>(in_i), out_j) = clipped_normal(stddev);
          }
        }
      }
      l.mw = Matrix(in_dim, out_dim);
      l.vw = Matrix(in_dim, out_dim);
      l.mb.assign(out_dim, 0.0);
      l.vb.assign(out_dim, 0.0);
      layers_.push_back(std::move(l));
      in_positions = std::move(next_positions);
      width = out_dim;
    }
  }

  // Fully-connected stack.
  const bool use_skip = options_.architecture == Architecture::kPartialSkip;
  for (int f = 0; f < options_.fc_layers; ++f) {
    const bool skip = use_skip && (f % 2 == 1);
    add_layer(width, static_cast<size_t>(options_.fc_units),
              /*is_output=*/false, skip);
    width = static_cast<size_t>(options_.fc_units);
  }
  add_layer(width, static_cast<size_t>(num_classes_), /*is_output=*/true,
            /*skip=*/false);
}

Matrix NeuralNetClassifier::Forward(const Matrix& x, std::vector<Matrix>* acts,
                                    std::vector<Matrix>* tanhs,
                                    std::vector<Matrix>* dropmasks,
                                    Rng* rng) const {
  Matrix cur = x;
  const bool training = rng != nullptr;
  for (size_t li = 0; li < layers_.size(); ++li) {
    const Layer& l = layers_[li];
    if (acts != nullptr) (*acts)[li] = cur;
    Matrix z = cur.MatMul(l.w);
    for (size_t i = 0; i < z.rows(); ++i) {
      double* row = z.RowPtr(i);
      for (size_t j = 0; j < z.cols(); ++j) row[j] += l.b[j];
    }
    if (l.output) {
      cur = std::move(z);
      continue;
    }
    Matrix t(z.rows(), z.cols());
    for (size_t i = 0; i < z.rows(); ++i) {
      for (size_t j = 0; j < z.cols(); ++j) {
        t(i, j) = std::tanh(z(i, j));
      }
    }
    if (tanhs != nullptr) (*tanhs)[li] = t;
    Matrix a = t;
    if (l.skip) {
      for (size_t i = 0; i < a.rows(); ++i) {
        for (size_t j = 0; j < a.cols(); ++j) a(i, j) += cur(i, j);
      }
    }
    if (training && options_.dropout > 0) {
      const double keep = 1.0 - options_.dropout;
      Matrix dm(a.rows(), a.cols());
      for (size_t i = 0; i < a.rows(); ++i) {
        for (size_t j = 0; j < a.cols(); ++j) {
          dm(i, j) = rng->Bernoulli(keep) ? 1.0 / keep : 0.0;
          a(i, j) *= dm(i, j);
        }
      }
      if (dropmasks != nullptr) (*dropmasks)[li] = std::move(dm);
    }
    cur = std::move(a);
  }
  return cur;
}

void NeuralNetClassifier::TrainEpochs(const Dataset& data,
                                      const std::vector<size_t>& rows,
                                      int epochs, bool only_output, Rng* rng) {
  const size_t n = rows.size();
  const size_t nl = layers_.size();
  std::vector<size_t> order = rows;

  double best_loss = 1e300;
  int stale = 0;
  int halvings = 0;

  const double b1 = 0.9, b2 = 0.999, eps = 1e-8;

  for (int epoch = 0; epoch < epochs; ++epoch) {
    rng->Shuffle(&order);
    double epoch_loss = 0;
    size_t batches = 0;
    for (size_t start = 0; start < n; start += options_.batch_size) {
      const size_t end = std::min(n, start + options_.batch_size);
      const size_t bs = end - start;
      Matrix x(bs, d_);
      std::vector<int> labels(bs);
      for (size_t i = 0; i < bs; ++i) {
        const size_t r = order[start + i];
        for (size_t j = 0; j < d_; ++j) {
          x(i, j) = (data.At(r, j) - mean_[j]) * inv_std_[j];
        }
        labels[i] = data.Label(r);
      }

      std::vector<Matrix> acts(nl), tanhs(nl), dropmasks(nl);
      Matrix logits = Forward(x, &acts, &tanhs, &dropmasks, rng);
      Matrix dcur;
      epoch_loss += SoftmaxLoss(logits, labels, &dcur);
      ++batches;

      ++adam_step_;
      const double bc1 = 1.0 - std::pow(b1, static_cast<double>(adam_step_));
      const double bc2 = 1.0 - std::pow(b2, static_cast<double>(adam_step_));

      for (size_t li_plus1 = nl; li_plus1 > 0; --li_plus1) {
        const size_t li = li_plus1 - 1;
        Layer& l = layers_[li];
        Matrix dz;
        Matrix da_predrop;
        if (l.output) {
          dz = std::move(dcur);
        } else {
          da_predrop = std::move(dcur);
          if (options_.dropout > 0 && dropmasks[li].rows() > 0) {
            for (size_t i = 0; i < da_predrop.rows(); ++i) {
              for (size_t j = 0; j < da_predrop.cols(); ++j) {
                da_predrop(i, j) *= dropmasks[li](i, j);
              }
            }
          }
          dz = Matrix(da_predrop.rows(), da_predrop.cols());
          const Matrix& t = tanhs[li];
          for (size_t i = 0; i < dz.rows(); ++i) {
            for (size_t j = 0; j < dz.cols(); ++j) {
              dz(i, j) = da_predrop(i, j) * (1.0 - t(i, j) * t(i, j));
            }
          }
        }

        // Gradient to previous layer.
        Matrix din = dz.MatMul(l.w.Transposed());
        if (l.skip) {
          for (size_t i = 0; i < din.rows(); ++i) {
            for (size_t j = 0; j < din.cols(); ++j) {
              din(i, j) += da_predrop(i, j);
            }
          }
        }

        const bool train_this = !only_output || l.output;
        if (train_this) {
          Matrix dw = acts[li].Transposed().MatMul(dz);
          std::vector<double> db(l.b.size(), 0.0);
          for (size_t i = 0; i < dz.rows(); ++i) {
            for (size_t j = 0; j < dz.cols(); ++j) db[j] += dz(i, j);
          }
          for (size_t i = 0; i < dw.rows(); ++i) {
            for (size_t j = 0; j < dw.cols(); ++j) {
              if (l.has_mask && l.mask(i, j) == 0.0) continue;
              const double g = dw(i, j) + options_.l2 * l.w(i, j);
              l.mw(i, j) = b1 * l.mw(i, j) + (1 - b1) * g;
              l.vw(i, j) = b2 * l.vw(i, j) + (1 - b2) * g * g;
              l.w(i, j) -= current_lr_ * (l.mw(i, j) / bc1) /
                           (std::sqrt(l.vw(i, j) / bc2) + eps);
            }
          }
          for (size_t j = 0; j < l.b.size(); ++j) {
            const double g = db[j];
            l.mb[j] = b1 * l.mb[j] + (1 - b1) * g;
            l.vb[j] = b2 * l.vb[j] + (1 - b2) * g * g;
            l.b[j] -= current_lr_ * (l.mb[j] / bc1) /
                      (std::sqrt(l.vb[j] / bc2) + eps);
          }
        }
        dcur = std::move(din);
      }
    }

    // Adaptive learning rate: halve on plateau (§7.4).
    epoch_loss /= std::max<size_t>(1, batches);
    if (epoch_loss < best_loss - 1e-4) {
      best_loss = epoch_loss;
      stale = 0;
    } else {
      ++stale;
      if (stale >= options_.plateau_patience &&
          halvings < options_.max_halvings) {
        current_lr_ *= 0.5;
        ++halvings;
        stale = 0;
      }
    }
  }
}

void NeuralNetClassifier::Fit(const Dataset& train) {
  AIMAI_SPAN("ml.dnn.fit");
  AIMAI_CHECK(train.n() > 0);
  d_ = train.d();
  num_classes_ = std::max(2, train.NumClasses());
  Rng rng(options_.seed);

  // Standardization.
  mean_.assign(d_, 0.0);
  inv_std_.assign(d_, 1.0);
  for (size_t i = 0; i < train.n(); ++i) {
    for (size_t j = 0; j < d_; ++j) mean_[j] += train.At(i, j);
  }
  for (size_t j = 0; j < d_; ++j) mean_[j] /= static_cast<double>(train.n());
  std::vector<double> var(d_, 0.0);
  for (size_t i = 0; i < train.n(); ++i) {
    for (size_t j = 0; j < d_; ++j) {
      const double dv = train.At(i, j) - mean_[j];
      var[j] += dv * dv;
    }
  }
  for (size_t j = 0; j < d_; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(train.n()));
    inv_std_[j] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }

  BuildNetwork(d_, &rng);

  std::vector<size_t> rows(train.n());
  for (size_t i = 0; i < train.n(); ++i) rows[i] = i;
  if (options_.max_train_examples > 0 &&
      rows.size() > static_cast<size_t>(options_.max_train_examples)) {
    rows = rng.SampleWithoutReplacement(
        train.n(), static_cast<size_t>(options_.max_train_examples));
  }
  TrainEpochs(train, rows, options_.epochs, /*only_output=*/false, &rng);
}

namespace {

/// Per-thread inference scratch: two ping-pong activation matrices reused
/// across calls (they grow to the largest block seen and stay warm).
struct NnScratch {
  Matrix a;
  Matrix b;
};

NnScratch& InferenceScratch() {
  static thread_local NnScratch scratch;
  return scratch;
}

}  // namespace

void NeuralNetClassifier::InferenceForward(const double* rows, size_t n,
                                           size_t stride, double* probs_out,
                                           double* hidden_out) const {
  AIMAI_CHECK(!layers_.empty());
  NnScratch& s = InferenceScratch();
  Matrix* cur = &s.a;
  Matrix* nxt = &s.b;

  cur->Resize(n, d_);
  for (size_t i = 0; i < n; ++i) {
    const double* x = rows + i * stride;
    double* row = cur->RowPtr(i);
    for (size_t j = 0; j < d_; ++j) row[j] = (x[j] - mean_[j]) * inv_std_[j];
  }

  for (size_t li = 0; li < layers_.size(); ++li) {
    const Layer& l = layers_[li];
    if (l.output && hidden_out != nullptr) {
      for (size_t i = 0; i < n; ++i) {
        const double* row = cur->RowPtr(i);
        std::copy(row, row + cur->cols(), hidden_out + i * cur->cols());
      }
      if (probs_out == nullptr) return;
    }
    cur->MatMulInto(l.w, nxt);
    for (size_t i = 0; i < n; ++i) {
      double* row = nxt->RowPtr(i);
      for (size_t j = 0; j < nxt->cols(); ++j) row[j] += l.b[j];
    }
    if (l.output) {
      const size_t k = nxt->cols();
      for (size_t i = 0; i < n; ++i) {
        const double* z = nxt->RowPtr(i);
        double* p = probs_out + i * k;
        std::copy(z, z + k, p);
        SoftmaxInPlace(p, k);
      }
      return;
    }
    for (size_t i = 0; i < n; ++i) {
      double* row = nxt->RowPtr(i);
      for (size_t j = 0; j < nxt->cols(); ++j) row[j] = std::tanh(row[j]);
    }
    if (l.skip) {
      for (size_t i = 0; i < n; ++i) {
        const double* prev = cur->RowPtr(i);
        double* row = nxt->RowPtr(i);
        for (size_t j = 0; j < nxt->cols(); ++j) row[j] += prev[j];
      }
    }
    std::swap(cur, nxt);
  }
}

void NeuralNetClassifier::PredictProbaInto(const double* x,
                                           double* out) const {
  AIMAI_SPAN("ml.dnn.predict");
  InferenceForward(x, 1, d_, out, nullptr);
}

void NeuralNetClassifier::PredictBatch(const double* rows, size_t n,
                                       size_t stride, double* out) const {
  AIMAI_SPAN("ml.dnn.predict_batch");
  const size_t k = static_cast<size_t>(num_classes_);
  // Blocked so the scratch matrices stay cache-resident on huge batches.
  constexpr size_t kBlock = 256;
  for (size_t start = 0; start < n; start += kBlock) {
    const size_t bn = std::min(kBlock, n - start);
    InferenceForward(rows + start * stride, bn, stride, out + start * k,
                     nullptr);
  }
}

std::vector<double> NeuralNetClassifier::LastHiddenFeatures(
    const double* x) const {
  std::vector<double> out(LastHiddenDim());
  InferenceForward(x, 1, d_, nullptr, out.data());
  return out;
}

void NeuralNetClassifier::LastHiddenBatch(const double* rows, size_t n,
                                          size_t stride, double* out) const {
  const size_t hd = LastHiddenDim();
  constexpr size_t kBlock = 256;
  for (size_t start = 0; start < n; start += kBlock) {
    const size_t bn = std::min(kBlock, n - start);
    InferenceForward(rows + start * stride, bn, stride, nullptr,
                     out + start * hd);
  }
}

size_t NeuralNetClassifier::LastHiddenDim() const {
  AIMAI_CHECK(!layers_.empty());
  return layers_.back().w.rows();
}

void NeuralNetClassifier::RetrainOutputLayer(const Dataset& data, int epochs) {
  AIMAI_CHECK(!layers_.empty());
  Rng rng(options_.seed ^ 0x5151);
  current_lr_ = options_.learning_rate;
  std::vector<size_t> rows(data.n());
  for (size_t i = 0; i < data.n(); ++i) rows[i] = i;
  TrainEpochs(data, rows, epochs, /*only_output=*/true, &rng);
}

}  // namespace aimai
