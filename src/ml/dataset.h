#ifndef AIMAI_ML_DATASET_H_
#define AIMAI_ML_DATASET_H_

#include <cstddef>
#include <vector>

#include "common/check.h"

namespace aimai {

/// A dense feature matrix with either class labels, regression targets, or
/// both. Row-major storage; all models in `ml/` consume this.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(size_t num_features) : d_(num_features) {}

  size_t n() const { return n_; }
  size_t d() const { return d_; }

  /// Appends an example. `label` < 0 means "no class label".
  void Add(const std::vector<double>& x, int label, double target = 0.0);

  const double* Row(size_t i) const { return &x_[i * d_]; }
  double At(size_t i, size_t j) const { return x_[i * d_ + j]; }
  int Label(size_t i) const { return y_[i]; }
  double Target(size_t i) const { return t_[i]; }

  const std::vector<int>& labels() const { return y_; }
  const std::vector<double>& targets() const { return t_; }

  /// Number of distinct class labels (max label + 1).
  int NumClasses() const;

  /// Subset by row indices.
  Dataset Subset(const std::vector<size_t>& rows) const;

  /// Concatenates another dataset with the same dimensionality.
  void Append(const Dataset& other);

 private:
  size_t n_ = 0;
  size_t d_ = 0;
  std::vector<double> x_;
  std::vector<int> y_;
  std::vector<double> t_;
};

}  // namespace aimai

#endif  // AIMAI_ML_DATASET_H_
