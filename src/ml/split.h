#ifndef AIMAI_ML_SPLIT_H_
#define AIMAI_ML_SPLIT_H_

#include <cstddef>
#include <vector>

#include "common/random.h"

namespace aimai {

/// Index pair describing one train/test split.
struct SplitIndices {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Random split of [0, n) with `train_fraction` in train.
SplitIndices RandomSplit(size_t n, double train_fraction, Rng* rng);

/// Splits by *group*: items sharing a group id land entirely in train or
/// entirely in test. This implements the paper's split-by-plan /
/// split-by-query / split-by-database modes, where `group_of[i]` is the
/// plan id / query id / database id of pair i.
SplitIndices GroupSplit(const std::vector<int>& group_of,
                        double train_fraction, Rng* rng);

/// Pair-aware group split: each item belongs to TWO groups (the two plans
/// of a pair). An item is in train only if both its groups are train
/// groups, in test only if both are test groups; straddling items are
/// dropped, matching "split the set of plans into two disjoint sets from
/// which the pairs are constructed".
SplitIndices TwoGroupSplit(const std::vector<std::pair<int, int>>& groups_of,
                           int num_groups, double train_fraction, Rng* rng);

/// K-fold cross-validation index sets.
std::vector<SplitIndices> KFold(size_t n, int k, Rng* rng);

}  // namespace aimai

#endif  // AIMAI_ML_SPLIT_H_
