#include "ml/compiled_forest.h"

#include "common/check.h"

namespace aimai {

void CompiledForest::Reset(size_t payload_stride) {
  AIMAI_CHECK(payload_stride > 0);
  payload_stride_ = payload_stride;
  roots_.clear();
  feature_.clear();
  threshold_.clear();
  left_.clear();
  right_.clear();
  payload_.clear();
  leaf_values_.clear();
  down_.clear();
  leaf_scalar_.clear();
}

void CompiledForest::Finalize() {
  down_.resize(feature_.size());
  for (size_t u = 0; u < feature_.size(); ++u) {
    int32_t dl;
    int32_t dr;
    if (feature_[u] < 0) {
      // Leaf: never descended through, but keep the encoding consistent.
      dl = ~static_cast<int32_t>(u);
      dr = dl;
    } else {
      const int32_t l = left_[u];
      const int32_t r = right_[u];
      dl = feature_[static_cast<size_t>(l)] < 0 ? ~l : l;
      dr = feature_[static_cast<size_t>(r)] < 0 ? ~r : r;
    }
    down_[u] = (static_cast<int64_t>(dl) << 32) |
               static_cast<int64_t>(static_cast<uint32_t>(dr));
  }
  if (payload_stride_ == 1) {
    leaf_scalar_.assign(feature_.size(), 0.0);
    for (size_t u = 0; u < feature_.size(); ++u) {
      if (feature_[u] < 0) {
        leaf_scalar_[u] = leaf_values_[static_cast<size_t>(payload_[u])];
      }
    }
  }
}

void CompiledForest::BeginTree() {
  roots_.push_back(static_cast<int32_t>(feature_.size()));
}

void CompiledForest::AddSplit(int feature, double threshold, int left,
                              int right) {
  AIMAI_CHECK(!roots_.empty() && feature >= 0 && left >= 0 && right >= 0);
  const int32_t base = roots_.back();
  feature_.push_back(static_cast<int32_t>(feature));
  threshold_.push_back(threshold);
  left_.push_back(base + static_cast<int32_t>(left));
  right_.push_back(base + static_cast<int32_t>(right));
  payload_.push_back(0);
}

void CompiledForest::AddLeaf(const double* payload) {
  AIMAI_CHECK(!roots_.empty());
  feature_.push_back(-1);
  threshold_.push_back(0.0);
  left_.push_back(-1);
  right_.push_back(-1);
  payload_.push_back(static_cast<int32_t>(leaf_values_.size()));
  leaf_values_.insert(leaf_values_.end(), payload, payload + payload_stride_);
}

}  // namespace aimai
