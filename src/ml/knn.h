#ifndef AIMAI_ML_KNN_H_
#define AIMAI_ML_KNN_H_

#include <vector>

#include "ml/dataset.h"

namespace aimai {

/// Brute-force nearest-neighbor index under cosine distance. The adaptive
/// combiners (§4.3) use it to decide whether a test point lies in the
/// neighborhood of the locally collected training data.
class KnnIndex {
 public:
  void Fit(const Dataset& train);

  /// Cosine distance (1 - cosine similarity) to the nearest stored point;
  /// returns 2.0 when the index is empty.
  double NearestDistance(const double* x) const;

  /// Majority label among the k nearest points (ties: smallest label).
  /// Selects the k nearest with std::nth_element (O(n) expected, vs. the
  /// former partial sort) over a per-thread distance scratch buffer
  /// reused across calls.
  int PredictMajority(const double* x, int k) const;

  size_t size() const { return n_; }

 private:
  double Cosine(const double* a, size_t row) const;

  size_t n_ = 0;
  size_t d_ = 0;
  std::vector<double> x_;      // Row-major copies.
  std::vector<double> norms_;  // L2 norms per row.
  std::vector<int> y_;
};

}  // namespace aimai

#endif  // AIMAI_ML_KNN_H_
