#include "ml/split.h"

#include <algorithm>
#include <set>

#include "common/check.h"

namespace aimai {

SplitIndices RandomSplit(size_t n, double train_fraction, Rng* rng) {
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  rng->Shuffle(&all);
  const size_t n_train = static_cast<size_t>(
      static_cast<double>(n) * train_fraction);
  SplitIndices out;
  out.train.assign(all.begin(), all.begin() + n_train);
  out.test.assign(all.begin() + n_train, all.end());
  return out;
}

SplitIndices GroupSplit(const std::vector<int>& group_of,
                        double train_fraction, Rng* rng) {
  std::set<int> group_set(group_of.begin(), group_of.end());
  std::vector<int> groups(group_set.begin(), group_set.end());
  rng->Shuffle(&groups);
  const size_t n_train_groups = static_cast<size_t>(
      static_cast<double>(groups.size()) * train_fraction);
  std::set<int> train_groups(groups.begin(), groups.begin() + n_train_groups);
  SplitIndices out;
  for (size_t i = 0; i < group_of.size(); ++i) {
    if (train_groups.count(group_of[i]) > 0) {
      out.train.push_back(i);
    } else {
      out.test.push_back(i);
    }
  }
  return out;
}

SplitIndices TwoGroupSplit(const std::vector<std::pair<int, int>>& groups_of,
                           int num_groups, double train_fraction, Rng* rng) {
  std::vector<int> groups(static_cast<size_t>(num_groups));
  for (int g = 0; g < num_groups; ++g) groups[static_cast<size_t>(g)] = g;
  rng->Shuffle(&groups);
  const size_t n_train_groups = static_cast<size_t>(
      static_cast<double>(groups.size()) * train_fraction);
  std::vector<bool> in_train(static_cast<size_t>(num_groups), false);
  for (size_t i = 0; i < n_train_groups; ++i) {
    in_train[static_cast<size_t>(groups[i])] = true;
  }
  SplitIndices out;
  for (size_t i = 0; i < groups_of.size(); ++i) {
    const auto [a, b] = groups_of[i];
    AIMAI_CHECK(a >= 0 && a < num_groups && b >= 0 && b < num_groups);
    const bool ta = in_train[static_cast<size_t>(a)];
    const bool tb = in_train[static_cast<size_t>(b)];
    if (ta && tb) {
      out.train.push_back(i);
    } else if (!ta && !tb) {
      out.test.push_back(i);
    }
    // Straddling pairs are dropped.
  }
  return out;
}

std::vector<SplitIndices> KFold(size_t n, int k, Rng* rng) {
  AIMAI_CHECK(k >= 2);
  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  rng->Shuffle(&all);
  std::vector<SplitIndices> folds(static_cast<size_t>(k));
  for (size_t i = 0; i < n; ++i) {
    const size_t f = i % static_cast<size_t>(k);
    for (size_t j = 0; j < static_cast<size_t>(k); ++j) {
      if (j == f) {
        folds[j].test.push_back(all[i]);
      } else {
        folds[j].train.push_back(all[i]);
      }
    }
  }
  return folds;
}

}  // namespace aimai
