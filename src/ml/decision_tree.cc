#include "ml/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace aimai {

void FeatureBinner::Fit(const Dataset& data, const std::vector<size_t>& rows,
                        Rng* rng) {
  const size_t d = data.d();
  edges_.assign(d, {});
  if (rows.empty()) return;

  // Sample rows for edge estimation.
  std::vector<size_t> sample = rows;
  constexpr size_t kMaxSample = 4096;
  if (sample.size() > kMaxSample) {
    const std::vector<size_t> pick =
        rng->SampleWithoutReplacement(sample.size(), kMaxSample);
    std::vector<size_t> reduced;
    reduced.reserve(kMaxSample);
    for (size_t p : pick) reduced.push_back(sample[p]);
    sample = std::move(reduced);
  }

  std::vector<double> vals;
  vals.reserve(sample.size());
  for (size_t j = 0; j < d; ++j) {
    vals.clear();
    for (size_t i : sample) vals.push_back(data.At(i, j));
    std::sort(vals.begin(), vals.end());
    std::vector<double>& e = edges_[j];
    for (int b = 1; b < kMaxBins; ++b) {
      const size_t pos = vals.size() * static_cast<size_t>(b) /
                         static_cast<size_t>(kMaxBins);
      const double v = vals[std::min(pos, vals.size() - 1)];
      if (e.empty() || v > e.back()) e.push_back(v);
    }
    // Drop the top edge if it equals the max (right bin would be empty —
    // harmless, so keep it simple and leave as-is).
  }
}

uint8_t FeatureBinner::BinOf(size_t j, double v) const {
  const std::vector<double>& e = edges_[j];
  const size_t b = static_cast<size_t>(
      std::lower_bound(e.begin(), e.end(), v) - e.begin());
  // Values <= e[b] land in bin b; values beyond all edges in the last bin.
  return static_cast<uint8_t>(b);
}

double FeatureBinner::EdgeValue(size_t j, int b) const {
  const std::vector<double>& e = edges_[j];
  if (b < 0 || static_cast<size_t>(b) >= e.size()) {
    return std::numeric_limits<double>::infinity();
  }
  return e[static_cast<size_t>(b)];
}

struct DecisionTree::BuildContext {
  std::vector<uint8_t> binned;  // m x d, local row-major.
  std::vector<int> labels;      // Classification.
  std::vector<double> targets;  // Regression.
  size_t d = 0;
  size_t features_per_split = 0;
  Rng rng{1};
  const FeatureBinner* binner = nullptr;
};

namespace {

double GiniFromCounts(const std::vector<double>& counts, double total) {
  if (total <= 0) return 0;
  double sumsq = 0;
  for (double c : counts) sumsq += c * c;
  return 1.0 - sumsq / (total * total);
}

}  // namespace

int DecisionTree::BuildNode(BuildContext* ctx, std::vector<uint32_t>* rows,
                            size_t begin, size_t end, int depth) {
  const int node_id = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  const size_t m = end - begin;
  AIMAI_CHECK(m > 0);

  // Node statistics.
  std::vector<double> counts;
  double sum = 0, sumsq = 0;
  if (is_regression_) {
    for (size_t i = begin; i < end; ++i) {
      const double t = ctx->targets[(*rows)[i]];
      sum += t;
      sumsq += t * t;
    }
  } else {
    counts.assign(static_cast<size_t>(num_classes_), 0.0);
    for (size_t i = begin; i < end; ++i) {
      counts[static_cast<size_t>(ctx->labels[(*rows)[i]])] += 1;
    }
  }

  auto make_leaf = [&]() {
    Node& leaf = nodes_[static_cast<size_t>(node_id)];
    if (is_regression_) {
      leaf.value = sum / static_cast<double>(m);
    } else {
      leaf.dist.assign(static_cast<size_t>(num_classes_), 0.0);
      for (size_t c = 0; c < counts.size(); ++c) {
        leaf.dist[c] = counts[c] / static_cast<double>(m);
      }
    }
    return node_id;
  };

  const double parent_impurity =
      is_regression_
          ? (sumsq - sum * sum / static_cast<double>(m)) /
                static_cast<double>(m)
          : GiniFromCounts(counts, static_cast<double>(m));

  if (depth >= options_.max_depth || m < 2 * options_.min_samples_leaf ||
      parent_impurity <= options_.min_impurity_decrease) {
    return make_leaf();
  }

  // Candidate features.
  std::vector<size_t> features =
      ctx->rng.SampleWithoutReplacement(ctx->d, ctx->features_per_split);

  int best_feature = -1;
  int best_bin = -1;
  double best_gain = options_.min_impurity_decrease;

  // Histogram buffers (reused across features).
  std::vector<double> h_count(FeatureBinner::kMaxBins);
  std::vector<double> h_sum(FeatureBinner::kMaxBins);
  std::vector<double> h_cls(FeatureBinner::kMaxBins *
                            static_cast<size_t>(std::max(1, num_classes_)));

  for (size_t f : features) {
    const int nbins = ctx->binner->NumBins(f);
    if (nbins < 2) continue;
    std::fill(h_count.begin(), h_count.begin() + nbins, 0.0);
    if (is_regression_) {
      std::fill(h_sum.begin(), h_sum.begin() + nbins, 0.0);
      for (size_t i = begin; i < end; ++i) {
        const uint32_t r = (*rows)[i];
        const uint8_t b = ctx->binned[r * ctx->d + f];
        h_count[b] += 1;
        h_sum[b] += ctx->targets[r];
      }
      double left_cnt = 0, left_sum = 0;
      for (int b = 0; b + 1 < nbins; ++b) {
        left_cnt += h_count[static_cast<size_t>(b)];
        left_sum += h_sum[static_cast<size_t>(b)];
        const double right_cnt = static_cast<double>(m) - left_cnt;
        if (left_cnt < static_cast<double>(options_.min_samples_leaf) ||
            right_cnt < static_cast<double>(options_.min_samples_leaf)) {
          continue;
        }
        const double right_sum = sum - left_sum;
        // SSE reduction per sample.
        const double gain =
            (left_sum * left_sum / left_cnt +
             right_sum * right_sum / right_cnt - sum * sum /
                 static_cast<double>(m)) / static_cast<double>(m);
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_bin = b;
        }
      }
    } else {
      const size_t k = static_cast<size_t>(num_classes_);
      std::fill(h_cls.begin(),
                h_cls.begin() + static_cast<size_t>(nbins) * k, 0.0);
      for (size_t i = begin; i < end; ++i) {
        const uint32_t r = (*rows)[i];
        const uint8_t b = ctx->binned[r * ctx->d + f];
        h_cls[static_cast<size_t>(b) * k +
              static_cast<size_t>(ctx->labels[r])] += 1;
        h_count[b] += 1;
      }
      std::vector<double> left(k, 0.0);
      double left_cnt = 0;
      for (int b = 0; b + 1 < nbins; ++b) {
        for (size_t c = 0; c < k; ++c) {
          left[c] += h_cls[static_cast<size_t>(b) * k + c];
        }
        left_cnt += h_count[static_cast<size_t>(b)];
        const double right_cnt = static_cast<double>(m) - left_cnt;
        if (left_cnt < static_cast<double>(options_.min_samples_leaf) ||
            right_cnt < static_cast<double>(options_.min_samples_leaf)) {
          continue;
        }
        double right_gini_num = 0;
        double left_gini_num = 0;
        for (size_t c = 0; c < k; ++c) {
          const double rc = counts[c] - left[c];
          left_gini_num += left[c] * left[c];
          right_gini_num += rc * rc;
        }
        const double gini_l = 1.0 - left_gini_num / (left_cnt * left_cnt);
        const double gini_r = 1.0 - right_gini_num / (right_cnt * right_cnt);
        const double gain = parent_impurity -
                            (left_cnt * gini_l + right_cnt * gini_r) /
                                static_cast<double>(m);
        if (gain > best_gain) {
          best_gain = gain;
          best_feature = static_cast<int>(f);
          best_bin = b;
        }
      }
    }
  }

  if (best_feature < 0) return make_leaf();

  // Partition rows by bin <= best_bin.
  const size_t fidx = static_cast<size_t>(best_feature);
  auto mid_it = std::partition(
      rows->begin() + static_cast<long>(begin),
      rows->begin() + static_cast<long>(end), [&](uint32_t r) {
        return ctx->binned[r * ctx->d + fidx] <=
               static_cast<uint8_t>(best_bin);
      });
  const size_t mid =
      static_cast<size_t>(mid_it - rows->begin());
  AIMAI_CHECK(mid > begin && mid < end);

  const int left_id = BuildNode(ctx, rows, begin, mid, depth + 1);
  const int right_id = BuildNode(ctx, rows, mid, end, depth + 1);
  Node& node = nodes_[static_cast<size_t>(node_id)];
  node.feature = best_feature;
  node.threshold = ctx->binner->EdgeValue(fidx, best_bin);
  node.left = left_id;
  node.right = right_id;
  return node_id;
}

namespace {

size_t FeaturesPerSplit(double fraction, size_t d) {
  if (fraction <= 0) {
    return std::max<size_t>(1, static_cast<size_t>(std::sqrt(
                                   static_cast<double>(d))));
  }
  return std::max<size_t>(
      1, std::min(d, static_cast<size_t>(fraction * static_cast<double>(d) +
                                         0.5)));
}

}  // namespace

void DecisionTree::FitClassification(const Dataset& data,
                                     const std::vector<size_t>& rows,
                                     int num_classes,
                                     const FeatureBinner* shared_binner) {
  AIMAI_CHECK(!rows.empty());
  is_regression_ = false;
  num_classes_ = num_classes;
  nodes_.clear();

  BuildContext ctx;
  ctx.d = data.d();
  ctx.rng = Rng(options_.seed);
  ctx.features_per_split = FeaturesPerSplit(options_.feature_fraction, ctx.d);
  if (shared_binner != nullptr) {
    binner_ = shared_binner;
  } else {
    own_binner_.Fit(data, rows, &ctx.rng);
    binner_ = &own_binner_;
  }
  ctx.binner = binner_;

  const size_t m = rows.size();
  ctx.binned.resize(m * ctx.d);
  ctx.labels.resize(m);
  for (size_t i = 0; i < m; ++i) {
    const size_t r = rows[i];
    ctx.labels[i] = data.Label(r);
    for (size_t j = 0; j < ctx.d; ++j) {
      ctx.binned[i * ctx.d + j] = binner_->BinOf(j, data.At(r, j));
    }
  }
  std::vector<uint32_t> order(m);
  for (size_t i = 0; i < m; ++i) order[i] = static_cast<uint32_t>(i);
  BuildNode(&ctx, &order, 0, m, 0);
}

void DecisionTree::FitRegression(const Dataset& data,
                                 const std::vector<size_t>& rows,
                                 const std::vector<double>& targets,
                                 const FeatureBinner* shared_binner) {
  AIMAI_CHECK(!rows.empty());
  AIMAI_CHECK(targets.size() == data.n());
  is_regression_ = true;
  num_classes_ = 0;
  nodes_.clear();

  BuildContext ctx;
  ctx.d = data.d();
  ctx.rng = Rng(options_.seed);
  ctx.features_per_split = FeaturesPerSplit(options_.feature_fraction, ctx.d);
  if (shared_binner != nullptr) {
    binner_ = shared_binner;
  } else {
    own_binner_.Fit(data, rows, &ctx.rng);
    binner_ = &own_binner_;
  }
  ctx.binner = binner_;

  const size_t m = rows.size();
  ctx.binned.resize(m * ctx.d);
  ctx.targets.resize(m);
  for (size_t i = 0; i < m; ++i) {
    const size_t r = rows[i];
    ctx.targets[i] = targets[r];
    for (size_t j = 0; j < ctx.d; ++j) {
      ctx.binned[i * ctx.d + j] = binner_->BinOf(j, data.At(r, j));
    }
  }
  std::vector<uint32_t> order(m);
  for (size_t i = 0; i < m; ++i) order[i] = static_cast<uint32_t>(i);
  BuildNode(&ctx, &order, 0, m, 0);
}

int DecisionTree::FindLeaf(const double* x) const {
  int id = 0;
  while (nodes_[static_cast<size_t>(id)].feature >= 0) {
    const Node& n = nodes_[static_cast<size_t>(id)];
    id = x[n.feature] <= n.threshold ? n.left : n.right;
  }
  return id;
}

const std::vector<double>& DecisionTree::LeafDistribution(
    const double* x) const {
  AIMAI_CHECK(!is_regression_ && !nodes_.empty());
  return nodes_[static_cast<size_t>(FindLeaf(x))].dist;
}

double DecisionTree::PredictValue(const double* x) const {
  AIMAI_CHECK(is_regression_ && !nodes_.empty());
  return nodes_[static_cast<size_t>(FindLeaf(x))].value;
}

void DecisionTree::CompileInto(CompiledForest* out) const {
  AIMAI_CHECK(!nodes_.empty());
  out->BeginTree();
  for (const Node& n : nodes_) {
    if (n.feature >= 0) {
      out->AddSplit(n.feature, n.threshold, n.left, n.right);
    } else if (is_regression_) {
      out->AddLeaf(&n.value);
    } else {
      out->AddLeaf(n.dist.data());
    }
  }
}

void DecisionTree::Save(TokenWriter* w) const {
  w->WriteTag("tree");
  w->WriteInt(num_classes_);
  w->WriteBool(is_regression_);
  w->WriteUInt(nodes_.size());
  for (const Node& n : nodes_) {
    w->WriteInt(n.feature);
    w->WriteDouble(n.threshold);
    w->WriteInt(n.left);
    w->WriteInt(n.right);
    w->WriteDouble(n.value);
    w->WriteDoubleVector(n.dist);
  }
}

void DecisionTree::Load(TokenReader* r) {
  r->ExpectTag("tree");
  num_classes_ = static_cast<int>(r->ReadInt());
  is_regression_ = r->ReadBool();
  const uint64_t n = r->ReadUInt();
  nodes_.assign(n, Node());
  for (uint64_t i = 0; i < n; ++i) {
    Node& node = nodes_[i];
    node.feature = static_cast<int>(r->ReadInt());
    node.threshold = r->ReadDouble();
    node.left = static_cast<int>(r->ReadInt());
    node.right = static_cast<int>(r->ReadInt());
    node.value = r->ReadDouble();
    node.dist = r->ReadDoubleVector();
  }
  binner_ = nullptr;  // Fit-time state; not needed for inference.
}

}  // namespace aimai
