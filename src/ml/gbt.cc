#include "ml/gbt.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/obs.h"

namespace aimai {

namespace {

DecisionTree::Options TreeOptions(const GradientBoostedTrees::Options& o,
                                  uint64_t seed) {
  DecisionTree::Options t;
  t.max_depth = o.max_depth;
  t.min_samples_leaf = o.min_samples_leaf;
  t.min_impurity_decrease = 1e-9;
  t.feature_fraction = 1.0;
  t.seed = seed;
  return t;
}

std::vector<size_t> SubsampleRows(size_t n, double fraction, Rng* rng) {
  if (fraction >= 1.0) {
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    return all;
  }
  const size_t m = std::max<size_t>(
      1, static_cast<size_t>(fraction * static_cast<double>(n)));
  return rng->SampleWithoutReplacement(n, m);
}

}  // namespace

void GradientBoostedTrees::Fit(const Dataset& train) {
  AIMAI_SPAN("ml.gbt.fit");
  AIMAI_CHECK(train.n() > 0);
  num_classes_ = std::max(2, train.NumClasses());
  const size_t n = train.n();
  const size_t k = static_cast<size_t>(num_classes_);
  trees_.clear();
  Rng rng(options_.seed);

  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  binner_.Fit(train, all, &rng);

  // Raw scores per example per class.
  std::vector<double> scores(n * k, 0.0);
  std::vector<double> residual(n);

  for (int round = 0; round < options_.num_rounds; ++round) {
    const std::vector<size_t> rows =
        SubsampleRows(n, options_.subsample, &rng);
    for (size_t c = 0; c < k; ++c) {
      // Softmax residual for class c.
      for (size_t i = 0; i < n; ++i) {
        const double* s = &scores[i * k];
        double mx = s[0];
        for (size_t j = 1; j < k; ++j) mx = std::max(mx, s[j]);
        double denom = 0;
        for (size_t j = 0; j < k; ++j) denom += std::exp(s[j] - mx);
        const double p = std::exp(s[c] - mx) / denom;
        residual[i] =
            (train.Label(i) == static_cast<int>(c) ? 1.0 : 0.0) - p;
      }
      auto tree = std::make_unique<DecisionTree>(
          TreeOptions(options_, rng.engine()()));
      tree->FitRegression(train, rows, residual, &binner_);
      for (size_t i = 0; i < n; ++i) {
        scores[i * k + c] +=
            options_.learning_rate * tree->PredictValue(train.Row(i));
      }
      trees_.push_back(std::move(tree));
    }
  }
  Compile();
}

void GradientBoostedTrees::Compile() {
  compiled_.Reset(1);
  for (const auto& tree : trees_) tree->CompileInto(&compiled_);
  compiled_.Finalize();
}

void GradientBoostedTrees::PredictProbaInto(const double* x,
                                            double* out) const {
  AIMAI_SPAN("ml.gbt.predict");
  AIMAI_CHECK(!compiled_.empty());
  const size_t k = static_cast<size_t>(num_classes_);
  std::fill(out, out + k, 0.0);
  compiled_.AccumulateRoundRobin(x, k, options_.learning_rate, out);
  SoftmaxInPlace(out, k);
}

void GradientBoostedTrees::PredictBatch(const double* rows, size_t n,
                                        size_t stride, double* out) const {
  AIMAI_SPAN("ml.gbt.predict_batch");
  AIMAI_CHECK(!compiled_.empty());
  const size_t k = static_cast<size_t>(num_classes_);
  std::fill(out, out + n * k, 0.0);
  compiled_.AccumulateRoundRobinBatch(rows, n, stride, k,
                                      options_.learning_rate, out);
  for (size_t i = 0; i < n; ++i) SoftmaxInPlace(out + i * k, k);
}

std::vector<double> GradientBoostedTrees::PredictProbaScalar(
    const double* x) const {
  const size_t k = static_cast<size_t>(num_classes_);
  std::vector<double> s(k, 0.0);
  for (size_t t = 0; t < trees_.size(); ++t) {
    s[t % k] += options_.learning_rate * trees_[t]->PredictValue(x);
  }
  SoftmaxInPlace(s.data(), k);
  return s;
}

void GradientBoostedTrees::Save(TokenWriter* w) const {
  w->WriteTag("gbt");
  w->WriteInt(num_classes_);
  w->WriteDouble(options_.learning_rate);
  w->WriteUInt(trees_.size());
  for (const auto& t : trees_) t->Save(w);
}

void GradientBoostedTrees::Load(TokenReader* r) {
  r->ExpectTag("gbt");
  num_classes_ = static_cast<int>(r->ReadInt());
  options_.learning_rate = r->ReadDouble();
  const uint64_t n = r->ReadUInt();
  trees_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    auto t = std::make_unique<DecisionTree>();
    t->Load(r);
    trees_.push_back(std::move(t));
  }
  Compile();
}

void GradientBoostedTreesRegressor::Fit(const Dataset& train) {
  AIMAI_CHECK(train.n() > 0);
  const size_t n = train.n();
  trees_.clear();
  Rng rng(options_.seed);

  std::vector<size_t> all(n);
  for (size_t i = 0; i < n; ++i) all[i] = i;
  binner_.Fit(train, all, &rng);

  base_ = 0;
  for (size_t i = 0; i < n; ++i) base_ += train.Target(i);
  base_ /= static_cast<double>(n);

  std::vector<double> pred(n, base_);
  std::vector<double> residual(n);
  for (int round = 0; round < options_.num_rounds; ++round) {
    for (size_t i = 0; i < n; ++i) residual[i] = train.Target(i) - pred[i];
    const std::vector<size_t> rows =
        SubsampleRows(n, options_.subsample, &rng);
    auto tree = std::make_unique<DecisionTree>(
        TreeOptions(options_, rng.engine()()));
    tree->FitRegression(train, rows, residual, &binner_);
    for (size_t i = 0; i < n; ++i) {
      pred[i] += options_.learning_rate * tree->PredictValue(train.Row(i));
    }
    trees_.push_back(std::move(tree));
  }
  Compile();
}

void GradientBoostedTreesRegressor::Compile() {
  compiled_.Reset(1);
  for (const auto& tree : trees_) tree->CompileInto(&compiled_);
  compiled_.Finalize();
}

void GradientBoostedTreesRegressor::Save(TokenWriter* w) const {
  w->WriteTag("gbtreg");
  w->WriteDouble(base_);
  w->WriteDouble(options_.learning_rate);
  w->WriteUInt(trees_.size());
  for (const auto& t : trees_) t->Save(w);
}

void GradientBoostedTreesRegressor::Load(TokenReader* r) {
  r->ExpectTag("gbtreg");
  base_ = r->ReadDouble();
  options_.learning_rate = r->ReadDouble();
  const uint64_t n = r->ReadUInt();
  trees_.clear();
  for (uint64_t i = 0; i < n; ++i) {
    auto t = std::make_unique<DecisionTree>();
    t->Load(r);
    trees_.push_back(std::move(t));
  }
  Compile();
}

double GradientBoostedTreesRegressor::Predict(const double* x) const {
  AIMAI_CHECK(!compiled_.empty());
  double out = base_;
  compiled_.AccumulateRoundRobin(x, 1, options_.learning_rate, &out);
  return out;
}

void GradientBoostedTreesRegressor::PredictBatch(const double* rows, size_t n,
                                                 size_t stride,
                                                 double* out) const {
  AIMAI_CHECK(!compiled_.empty());
  std::fill(out, out + n, base_);
  compiled_.AccumulateRoundRobinBatch(rows, n, stride, 1,
                                      options_.learning_rate, out);
}

double GradientBoostedTreesRegressor::PredictScalar(const double* x) const {
  double out = base_;
  for (const auto& tree : trees_) {
    out += options_.learning_rate * tree->PredictValue(x);
  }
  return out;
}

}  // namespace aimai
