#include "ml/dataset.h"

#include <algorithm>

namespace aimai {

void Dataset::Add(const std::vector<double>& x, int label, double target) {
  if (d_ == 0) d_ = x.size();
  AIMAI_CHECK(x.size() == d_);
  x_.insert(x_.end(), x.begin(), x.end());
  y_.push_back(label);
  t_.push_back(target);
  ++n_;
}

int Dataset::NumClasses() const {
  int mx = -1;
  for (int y : y_) mx = std::max(mx, y);
  return mx + 1;
}

Dataset Dataset::Subset(const std::vector<size_t>& rows) const {
  Dataset out(d_);
  for (size_t i : rows) {
    AIMAI_CHECK(i < n_);
    std::vector<double> row(Row(i), Row(i) + d_);
    out.Add(row, y_[i], t_[i]);
  }
  return out;
}

void Dataset::Append(const Dataset& other) {
  if (n_ == 0 && d_ == 0) d_ = other.d();
  AIMAI_CHECK(other.d() == d_);
  for (size_t i = 0; i < other.n(); ++i) {
    std::vector<double> row(other.Row(i), other.Row(i) + d_);
    Add(row, other.Label(i), other.Target(i));
  }
}

}  // namespace aimai
