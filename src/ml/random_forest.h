#ifndef AIMAI_ML_RANDOM_FOREST_H_
#define AIMAI_ML_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "ml/decision_tree.h"
#include "ml/model.h"

namespace aimai {

/// Bagging ensemble of CART trees (the paper's best offline model family).
/// Bootstrap-sampled trees with sqrt-feature subsampling; probabilities
/// are the average of leaf distributions, making `Uncertainty` a usable
/// adaptive-model signal (§4.3).
class RandomForest : public Classifier {
 public:
  struct Options {
    int num_trees = 80;
    int max_depth = 24;
    size_t min_samples_leaf = 1;
    double min_impurity_decrease = 1e-6;
    /// <= 0 means sqrt(d) features per split.
    double feature_fraction = -1.0;
    /// Rows per tree as a fraction of n (bootstrap with replacement).
    double bootstrap_fraction = 1.0;
    uint64_t seed = 7;
  };

  RandomForest() : RandomForest(Options()) {}
  explicit RandomForest(Options options) : options_(options) {}

  void Fit(const Dataset& train) override;
  void PredictProbaInto(const double* x, double* out) const override;
  void PredictBatch(const double* rows, size_t n, size_t stride,
                    double* out) const override;

  /// Reference node-chasing path (pre-compilation); kept for the
  /// bit-identity tests and the scalar-vs-compiled benchmarks.
  std::vector<double> PredictProbaScalar(const double* x) const;

  size_t num_trees() const { return trees_.size(); }

  /// Persists / restores the trained ensemble (inference state).
  void Save(TokenWriter* w) const;
  void Load(TokenReader* r);

 private:
  void Compile();

  Options options_;
  FeatureBinner binner_;
  std::vector<std::unique_ptr<DecisionTree>> trees_;
  CompiledForest compiled_;
};

/// Random-forest regressor (used by the plan-level cost regressor
/// baseline, §6.1).
class RandomForestRegressor : public Regressor {
 public:
  using Options = RandomForest::Options;

  RandomForestRegressor() : RandomForestRegressor(Options()) {}
  explicit RandomForestRegressor(Options options) : options_(options) {}

  void Fit(const Dataset& train) override;
  double Predict(const double* x) const override;
  void PredictBatch(const double* rows, size_t n, size_t stride,
                    double* out) const override;

  /// Reference node-chasing path (bit-identity tests / benchmarks).
  double PredictScalar(const double* x) const;

  void Save(TokenWriter* w) const;
  void Load(TokenReader* r);

 private:
  void Compile();

  Options options_;
  FeatureBinner binner_;
  std::vector<std::unique_ptr<DecisionTree>> trees_;
  CompiledForest compiled_;
};

}  // namespace aimai

#endif  // AIMAI_ML_RANDOM_FOREST_H_
