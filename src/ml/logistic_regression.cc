#include "ml/logistic_regression.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/obs.h"

namespace aimai {

namespace {

void Softmax(std::vector<double>* z) {
  SoftmaxInPlace(z->data(), z->size());
}

}  // namespace

std::vector<double> LogisticRegression::Standardize(const double* x) const {
  std::vector<double> out(d_);
  for (size_t j = 0; j < d_; ++j) {
    out[j] = (x[j] - mean_[j]) * inv_std_[j];
  }
  return out;
}

void LogisticRegression::Fit(const Dataset& train) {
  AIMAI_SPAN("ml.logreg.fit");
  AIMAI_CHECK(train.n() > 0);
  d_ = train.d();
  num_classes_ = std::max(2, train.NumClasses());
  const size_t k = static_cast<size_t>(num_classes_);
  const size_t n = train.n();

  // Standardization statistics.
  mean_.assign(d_, 0.0);
  inv_std_.assign(d_, 1.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d_; ++j) mean_[j] += train.At(i, j);
  }
  for (size_t j = 0; j < d_; ++j) mean_[j] /= static_cast<double>(n);
  std::vector<double> var(d_, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d_; ++j) {
      const double dlt = train.At(i, j) - mean_[j];
      var[j] += dlt * dlt;
    }
  }
  for (size_t j = 0; j < d_; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(n));
    inv_std_[j] = sd > 1e-12 ? 1.0 / sd : 1.0;
  }

  const size_t wd = d_ + 1;
  w_.assign(k * wd, 0.0);
  // Adam state.
  std::vector<double> m(k * wd, 0.0), v(k * wd, 0.0);
  const double b1 = 0.9, b2 = 0.999, eps = 1e-8;
  int64_t step = 0;

  Rng rng(options_.seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  std::vector<double> grad(k * wd);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < n; start += options_.batch_size) {
      const size_t end = std::min(n, start + options_.batch_size);
      std::fill(grad.begin(), grad.end(), 0.0);
      for (size_t idx = start; idx < end; ++idx) {
        const size_t i = order[idx];
        const std::vector<double> x = Standardize(train.Row(i));
        std::vector<double> z(k, 0.0);
        for (size_t c = 0; c < k; ++c) {
          const double* wc = &w_[c * wd];
          double dot = wc[d_];
          for (size_t j = 0; j < d_; ++j) dot += wc[j] * x[j];
          z[c] = dot;
        }
        Softmax(&z);
        const int y = train.Label(i);
        for (size_t c = 0; c < k; ++c) {
          const double err = z[c] - (static_cast<int>(c) == y ? 1.0 : 0.0);
          double* gc = &grad[c * wd];
          for (size_t j = 0; j < d_; ++j) gc[j] += err * x[j];
          gc[d_] += err;
        }
      }
      const double scale = 1.0 / static_cast<double>(end - start);
      ++step;
      const double bc1 = 1.0 - std::pow(b1, static_cast<double>(step));
      const double bc2 = 1.0 - std::pow(b2, static_cast<double>(step));
      for (size_t t = 0; t < k * wd; ++t) {
        const double g = grad[t] * scale + options_.l2 * w_[t];
        m[t] = b1 * m[t] + (1 - b1) * g;
        v[t] = b2 * v[t] + (1 - b2) * g * g;
        w_[t] -= options_.learning_rate * (m[t] / bc1) /
                 (std::sqrt(v[t] / bc2) + eps);
      }
    }
  }
}

void LogisticRegression::Save(TokenWriter* w) const {
  w->WriteTag("lr");
  w->WriteInt(num_classes_);
  w->WriteUInt(d_);
  w->WriteDoubleVector(mean_);
  w->WriteDoubleVector(inv_std_);
  w->WriteDoubleVector(w_);
}

void LogisticRegression::Load(TokenReader* r) {
  r->ExpectTag("lr");
  num_classes_ = static_cast<int>(r->ReadInt());
  d_ = r->ReadUInt();
  mean_ = r->ReadDoubleVector();
  inv_std_ = r->ReadDoubleVector();
  w_ = r->ReadDoubleVector();
}

void LogisticRegression::PredictProbaInto(const double* x,
                                          double* out) const {
  AIMAI_SPAN("ml.logreg.predict");
  const size_t k = static_cast<size_t>(num_classes_);
  const size_t wd = d_ + 1;
  // Standardization folds into the dot product: wc[j] * ((x - mean) *
  // inv_std) is the exact product the staging-buffer path computed, so
  // the zero-allocation rewrite is bit-identical.
  for (size_t c = 0; c < k; ++c) {
    const double* wc = &w_[c * wd];
    double dot = wc[d_];
    for (size_t j = 0; j < d_; ++j) {
      dot += wc[j] * ((x[j] - mean_[j]) * inv_std_[j]);
    }
    out[c] = dot;
  }
  SoftmaxInPlace(out, k);
}

}  // namespace aimai
