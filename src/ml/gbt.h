#ifndef AIMAI_ML_GBT_H_
#define AIMAI_ML_GBT_H_

#include <memory>
#include <vector>

#include "ml/decision_tree.h"
#include "ml/model.h"

namespace aimai {

/// Gradient-boosted trees: multiclass classification via one regression
/// tree per class per round fitted to the softmax residual, and a
/// least-squares regressor variant (the boosting ensemble family from
/// §4.1 / §6.1).
class GradientBoostedTrees : public Classifier {
 public:
  struct Options {
    int num_rounds = 60;
    int max_depth = 6;
    double learning_rate = 0.15;
    double subsample = 0.8;
    size_t min_samples_leaf = 4;
    uint64_t seed = 11;
  };

  GradientBoostedTrees() : GradientBoostedTrees(Options()) {}
  explicit GradientBoostedTrees(Options options) : options_(options) {}

  void Fit(const Dataset& train) override;
  void PredictProbaInto(const double* x, double* out) const override;
  void PredictBatch(const double* rows, size_t n, size_t stride,
                    double* out) const override;

  /// Reference node-chasing path (bit-identity tests / benchmarks).
  std::vector<double> PredictProbaScalar(const double* x) const;

  void Save(TokenWriter* w) const;
  void Load(TokenReader* r);

 private:
  void Compile();

  Options options_;
  FeatureBinner binner_;
  // trees_[round * num_classes + class].
  std::vector<std::unique_ptr<DecisionTree>> trees_;
  CompiledForest compiled_;
};

/// Least-squares gradient boosting (plan-pair cost-ratio regressor, §6.1).
class GradientBoostedTreesRegressor : public Regressor {
 public:
  using Options = GradientBoostedTrees::Options;

  GradientBoostedTreesRegressor()
      : GradientBoostedTreesRegressor(Options()) {}
  explicit GradientBoostedTreesRegressor(Options options)
      : options_(options) {}

  void Fit(const Dataset& train) override;
  double Predict(const double* x) const override;
  void PredictBatch(const double* rows, size_t n, size_t stride,
                    double* out) const override;

  /// Reference node-chasing path (bit-identity tests / benchmarks).
  double PredictScalar(const double* x) const;

  void Save(TokenWriter* w) const;
  void Load(TokenReader* r);

 private:
  void Compile();

  Options options_;
  FeatureBinner binner_;
  double base_ = 0;
  std::vector<std::unique_ptr<DecisionTree>> trees_;
  CompiledForest compiled_;
};

}  // namespace aimai

#endif  // AIMAI_ML_GBT_H_
