#ifndef AIMAI_ML_METRICS_H_
#define AIMAI_ML_METRICS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace aimai {

/// Confusion-matrix-based evaluation (paper §7.1). Metrics are per-class
/// one-vs-rest: for a class c, examples labeled c are positives.
struct ClassMetrics {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
  int64_t support = 0;  // Number of true positives + false negatives.
};

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(int num_classes);

  void Add(int truth, int predicted);

  /// Merges counts from another matrix (e.g. across cross-validation folds).
  void Merge(const ConfusionMatrix& other);

  int64_t count(int truth, int predicted) const;
  int64_t total() const { return total_; }

  double Accuracy() const;
  ClassMetrics ForClass(int c) const;

  /// Unweighted mean F1 over classes with support.
  double MacroF1() const;

  std::string ToString() const;

 private:
  int num_classes_;
  std::vector<int64_t> counts_;  // truth * k + predicted.
  int64_t total_ = 0;
};

/// Convenience: evaluates `predicted` vs `truth` vectors.
ConfusionMatrix Evaluate(const std::vector<int>& truth,
                         const std::vector<int>& predicted, int num_classes);

}  // namespace aimai

#endif  // AIMAI_ML_METRICS_H_
