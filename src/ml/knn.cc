#include "ml/knn.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "common/check.h"

namespace aimai {

void KnnIndex::Fit(const Dataset& train) {
  n_ = train.n();
  d_ = train.d();
  x_.assign(n_ * d_, 0.0);
  norms_.assign(n_, 0.0);
  y_.assign(n_, 0);
  for (size_t i = 0; i < n_; ++i) {
    double norm = 0;
    for (size_t j = 0; j < d_; ++j) {
      const double v = train.At(i, j);
      x_[i * d_ + j] = v;
      norm += v * v;
    }
    norms_[i] = std::sqrt(norm);
    y_[i] = train.Label(i);
  }
}

double KnnIndex::Cosine(const double* a, size_t row) const {
  double dot = 0, na = 0;
  const double* b = &x_[row * d_];
  for (size_t j = 0; j < d_; ++j) {
    dot += a[j] * b[j];
    na += a[j] * a[j];
  }
  const double denom = std::sqrt(na) * norms_[row];
  if (denom <= 1e-12) return 1.0;  // Degenerate vectors: max dissimilarity.
  return 1.0 - dot / denom;
}

double KnnIndex::NearestDistance(const double* x) const {
  if (n_ == 0) return 2.0;
  double best = 2.0;
  for (size_t i = 0; i < n_; ++i) {
    best = std::min(best, Cosine(x, i));
  }
  return best;
}

int KnnIndex::PredictMajority(const double* x, int k) const {
  AIMAI_CHECK(n_ > 0);
  // Scratch reused across calls on each thread; grows once per index size.
  static thread_local std::vector<std::pair<double, int>> dist;
  static thread_local std::vector<std::pair<int, int>> votes;  // label, count
  dist.clear();
  dist.reserve(n_);
  for (size_t i = 0; i < n_; ++i) {
    dist.emplace_back(Cosine(x, i), y_[i]);
  }
  const size_t kk = std::min<size_t>(static_cast<size_t>(k), n_);
  // Partial selection: ordering within the k nearest does not matter for
  // a majority vote. (dist, label) pair comparison keeps the selected set
  // deterministic under distance ties, exactly as the former partial sort.
  if (kk < n_) {
    std::nth_element(dist.begin(), dist.begin() + static_cast<long>(kk - 1),
                     dist.end());
  }
  votes.clear();
  for (size_t i = 0; i < kk; ++i) {
    const int label = dist[i].second;
    bool found = false;
    for (auto& [l, v] : votes) {
      if (l == label) {
        ++v;
        found = true;
        break;
      }
    }
    if (!found) votes.emplace_back(label, 1);
  }
  int best_label = -1, best_votes = -1;
  for (const auto& [label, v] : votes) {
    if (v > best_votes || (v == best_votes && label < best_label)) {
      best_votes = v;
      best_label = label;
    }
  }
  return best_label;
}

}  // namespace aimai
