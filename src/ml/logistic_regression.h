#ifndef AIMAI_ML_LOGISTIC_REGRESSION_H_
#define AIMAI_ML_LOGISTIC_REGRESSION_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/serialize.h"
#include "ml/model.h"

namespace aimai {

/// Multinomial (softmax) logistic regression trained with mini-batch
/// Adam. Features are standardized internally (mean/std learned at Fit).
/// The simplest linear learner the paper evaluates (§4.1).
class LogisticRegression : public Classifier {
 public:
  struct Options {
    int epochs = 40;
    size_t batch_size = 64;
    double learning_rate = 0.05;
    double l2 = 1e-4;
    uint64_t seed = 17;
  };

  LogisticRegression() : LogisticRegression(Options()) {}
  explicit LogisticRegression(Options options) : options_(options) {}

  void Fit(const Dataset& train) override;
  /// Zero-allocation: standardization folds into the dot product, and the
  /// softmax runs in place over `out`.
  void PredictProbaInto(const double* x, double* out) const override;

  void Save(TokenWriter* w) const;
  void Load(TokenReader* r);

 private:
  std::vector<double> Standardize(const double* x) const;

  Options options_;
  size_t d_ = 0;
  std::vector<double> mean_;
  std::vector<double> inv_std_;
  // Weights: num_classes x (d + 1), last column is the bias.
  std::vector<double> w_;
};

}  // namespace aimai

#endif  // AIMAI_ML_LOGISTIC_REGRESSION_H_
