#ifndef AIMAI_ML_MODEL_H_
#define AIMAI_ML_MODEL_H_

#include <algorithm>
#include <cmath>
#include <vector>

#include "ml/dataset.h"

namespace aimai {

/// In-place softmax over s[0..k). Every classifier in this library uses
/// this exact operation order (max over all entries starting from s[0],
/// one exp/accumulate pass, one divide pass), so scalar, batched, and
/// compiled paths produce bit-identical probabilities.
inline void SoftmaxInPlace(double* s, size_t k) {
  double mx = s[0];
  for (size_t c = 0; c < k; ++c) mx = std::max(mx, s[c]);
  double denom = 0;
  for (size_t c = 0; c < k; ++c) {
    s[c] = std::exp(s[c] - mx);
    denom += s[c];
  }
  for (size_t c = 0; c < k; ++c) s[c] /= denom;
}

/// Abstract multiclass classifier. All classifiers in this library train on
/// a `Dataset` with integer labels and expose calibrated-ish class
/// probabilities; `Uncertainty` is 1 - max probability, the signal the
/// adaptive combiners (paper §4.3) consume.
///
/// `PredictProbaInto` is the primitive every model implements: it writes
/// num_classes() probabilities into a caller-provided buffer with no heap
/// allocation. `PredictBatch` is the batched entry point the tuner's
/// comparator uses at candidate-enumeration scale; the default loops the
/// scalar primitive, and the compiled tree ensembles override it with
/// blocked structure-of-arrays traversals. Both are bit-identical to the
/// scalar path by contract (same floating-point operation order).
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual void Fit(const Dataset& train) = 0;

  /// Writes class probabilities for one example into out[0..num_classes).
  virtual void PredictProbaInto(const double* x, double* out) const = 0;

  /// Class probabilities for `n` examples laid out as rows of `stride`
  /// doubles (stride >= feature dim); writes n * num_classes values
  /// row-major into `out`.
  virtual void PredictBatch(const double* rows, size_t n, size_t stride,
                            double* out) const {
    const size_t k = static_cast<size_t>(num_classes_);
    for (size_t i = 0; i < n; ++i) {
      PredictProbaInto(rows + i * stride, out + i * k);
    }
  }

  /// Allocating convenience wrapper around the primitive.
  std::vector<double> PredictProba(const double* x) const {
    std::vector<double> p(static_cast<size_t>(num_classes_), 0.0);
    PredictProbaInto(x, p.data());
    return p;
  }

  /// Argmax label using caller scratch (>= num_classes doubles). Ties go
  /// to the first maximal class — the tie-break every caller relies on.
  int Predict(const double* x, double* scratch) const {
    PredictProbaInto(x, scratch);
    return ArgmaxLabel(scratch, static_cast<size_t>(num_classes_));
  }

  int Predict(const double* x) const {
    double buf[kStackClasses];
    if (static_cast<size_t>(num_classes_) <= kStackClasses) {
      return Predict(x, buf);
    }
    std::vector<double> p(static_cast<size_t>(num_classes_));
    return Predict(x, p.data());
  }

  /// 1 - max class probability with caller scratch (>= num_classes).
  double UncertaintyInto(const double* x, double* scratch) const {
    PredictProbaInto(x, scratch);
    double mx = 0;
    for (size_t c = 0; c < static_cast<size_t>(num_classes_); ++c) {
      mx = std::max(mx, scratch[c]);
    }
    return 1.0 - mx;
  }

  /// 1 - max class probability: low values mean confident predictions.
  double Uncertainty(const double* x) const {
    double buf[kStackClasses];
    if (static_cast<size_t>(num_classes_) <= kStackClasses) {
      return UncertaintyInto(x, buf);
    }
    std::vector<double> p(static_cast<size_t>(num_classes_));
    return UncertaintyInto(x, p.data());
  }

  /// Argmax with first-max-wins tie-breaking over a probability row.
  static int ArgmaxLabel(const double* p, size_t k) {
    int best = 0;
    for (size_t i = 1; i < k; ++i) {
      if (p[i] > p[static_cast<size_t>(best)]) best = static_cast<int>(i);
    }
    return best;
  }

  int num_classes() const { return num_classes_; }

 protected:
  /// Stack-buffer bound for the allocation-free Predict/Uncertainty
  /// wrappers (plan-pair classification uses 3 classes).
  static constexpr size_t kStackClasses = 16;

  int num_classes_ = 0;
};

/// Abstract regressor (squared-loss).
class Regressor {
 public:
  virtual ~Regressor() = default;
  /// Trains on `train.targets()`.
  virtual void Fit(const Dataset& train) = 0;
  virtual double Predict(const double* x) const = 0;

  /// Predictions for `n` examples laid out as rows of `stride` doubles;
  /// writes n values into `out`. Default loops the scalar path; compiled
  /// ensembles override with blocked traversals (bit-identical results).
  virtual void PredictBatch(const double* rows, size_t n, size_t stride,
                            double* out) const {
    for (size_t i = 0; i < n; ++i) out[i] = Predict(rows + i * stride);
  }
};

}  // namespace aimai

#endif  // AIMAI_ML_MODEL_H_
