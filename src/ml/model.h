#ifndef AIMAI_ML_MODEL_H_
#define AIMAI_ML_MODEL_H_

#include <algorithm>
#include <vector>

#include "ml/dataset.h"

namespace aimai {

/// Abstract multiclass classifier. All classifiers in this library train on
/// a `Dataset` with integer labels and expose calibrated-ish class
/// probabilities; `Uncertainty` is 1 - max probability, the signal the
/// adaptive combiners (paper §4.3) consume.
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual void Fit(const Dataset& train) = 0;

  /// Class probabilities for one example (size = NumClasses at Fit time).
  virtual std::vector<double> PredictProba(const double* x) const = 0;

  virtual int Predict(const double* x) const {
    const std::vector<double> p = PredictProba(x);
    int best = 0;
    for (size_t i = 1; i < p.size(); ++i) {
      if (p[i] > p[static_cast<size_t>(best)]) best = static_cast<int>(i);
    }
    return best;
  }

  /// 1 - max class probability: low values mean confident predictions.
  double Uncertainty(const double* x) const {
    const std::vector<double> p = PredictProba(x);
    double mx = 0;
    for (double v : p) mx = std::max(mx, v);
    return 1.0 - mx;
  }

  int num_classes() const { return num_classes_; }

 protected:
  int num_classes_ = 0;
};

/// Abstract regressor (squared-loss).
class Regressor {
 public:
  virtual ~Regressor() = default;
  /// Trains on `train.targets()`.
  virtual void Fit(const Dataset& train) = 0;
  virtual double Predict(const double* x) const = 0;
};

}  // namespace aimai

#endif  // AIMAI_ML_MODEL_H_
