#include "ml/matrix.h"

#include <algorithm>

#include "common/check.h"

namespace aimai {

void Matrix::Fill(double v) { std::fill(data_.begin(), data_.end(), v); }

void Matrix::Resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

Matrix Matrix::MatMul(const Matrix& other) const {
  Matrix out;
  MatMulInto(other, &out);
  return out;
}

void Matrix::MatMulInto(const Matrix& other, Matrix* out) const {
  AIMAI_CHECK(cols_ == other.rows());
  AIMAI_CHECK(out != this && out != &other);
  out->Resize(rows_, other.cols());
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0) continue;
      const double* brow = other.RowPtr(k);
      double* orow = out->RowPtr(i);
      for (size_t j = 0; j < other.cols(); ++j) {
        orow[j] += a * brow[j];
      }
    }
  }
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) {
      out(j, i) = (*this)(i, j);
    }
  }
  return out;
}

}  // namespace aimai
