#ifndef AIMAI_ML_MATRIX_H_
#define AIMAI_ML_MATRIX_H_

#include <cstddef>
#include <vector>

namespace aimai {

/// Minimal dense row-major matrix used by the neural-network code.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : rows_(rows), cols_(cols),
                                     data_(rows * cols, 0.0) {}

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  double* RowPtr(size_t r) { return &data_[r * cols_]; }
  const double* RowPtr(size_t r) const { return &data_[r * cols_]; }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  void Fill(double v);

  /// Reshapes to rows x cols, zero-filled, reusing existing capacity
  /// (scratch matrices grow once and stay allocated).
  void Resize(size_t rows, size_t cols);

  /// out = this (m x k) * other (k x n).
  Matrix MatMul(const Matrix& other) const;

  /// MatMul into caller storage: out = this * other, reusing `out`'s
  /// capacity. `out` must not alias either operand. Identical operation
  /// order to MatMul, so results are bit-identical.
  void MatMulInto(const Matrix& other, Matrix* out) const;

  /// out = this^T.
  Matrix Transposed() const;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace aimai

#endif  // AIMAI_ML_MATRIX_H_
