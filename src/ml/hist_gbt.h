#ifndef AIMAI_ML_HIST_GBT_H_
#define AIMAI_ML_HIST_GBT_H_

#include <memory>
#include <vector>

#include "ml/compiled_forest.h"
#include "ml/decision_tree.h"
#include "ml/model.h"

namespace aimai {

/// LightGBM-style gradient boosting: histogram split finding on pre-binned
/// features, *leaf-wise* (best-first) tree growth with a leaf cap, and
/// second-order (Newton) leaf values with L2 regularization. This is the
/// "LGBM" model family in the paper's Figure 7/8/10.
class HistGradientBoosting : public Classifier {
 public:
  struct Options {
    int num_rounds = 60;
    int max_leaves = 31;
    double learning_rate = 0.15;
    double lambda = 1.0;          // L2 on leaf values.
    double min_child_hessian = 1.0;
    double subsample = 0.8;
    uint64_t seed = 23;
  };

  HistGradientBoosting() : HistGradientBoosting(Options()) {}
  explicit HistGradientBoosting(Options options) : options_(options) {}

  void Fit(const Dataset& train) override;
  void PredictProbaInto(const double* x, double* out) const override;
  void PredictBatch(const double* rows, size_t n, size_t stride,
                    double* out) const override;

  /// Reference node-chasing path (bit-identity tests / benchmarks).
  std::vector<double> PredictProbaScalar(const double* x) const;

  void Save(TokenWriter* w) const;
  void Load(TokenReader* r);

 private:
  struct TreeNode {
    int feature = -1;
    double threshold = 0;
    int left = -1;
    int right = -1;
    double value = 0;  // Leaf output.
  };
  struct Tree {
    std::vector<TreeNode> nodes;
    double Predict(const double* x) const;
  };

  /// Grows one leaf-wise tree on (grad, hess) for the sampled rows.
  Tree GrowTree(const Dataset& train, const std::vector<uint8_t>& binned,
                const std::vector<size_t>& rows,
                const std::vector<double>& grad,
                const std::vector<double>& hess) const;

  void Compile();

  Options options_;
  FeatureBinner binner_;
  std::vector<Tree> trees_;  // round-major, num_classes per round.
  CompiledForest compiled_;
};

}  // namespace aimai

#endif  // AIMAI_ML_HIST_GBT_H_
