#include "tuner/workload_tuner.h"

#include <algorithm>
#include <set>
#include <utility>

#include "common/check.h"
#include "obs/obs.h"
#include "tuner/parallel.h"

namespace aimai {

WorkloadTuningResult WorkloadLevelTuner::Tune(
    const std::vector<WorkloadQuery>& workload, const Configuration& base,
    const CostComparator& comparator) {
  AIMAI_SPAN("tuner.workload_tune");
  ThreadPool* tp = options_.pool != nullptr ? options_.pool : SharedPool();
  WorkloadTuningResult result;
  result.recommended = base;

  // Base plans (parallel what-if; the weighted sum accumulates serially
  // in workload order so floating-point association never varies).
  result.base_plans.resize(workload.size());
  TunerParallelFor(tp, workload.size(), [&](size_t i) {
    result.base_plans[i] = what_if_->Optimize(workload[i].query, base);
  });
  for (size_t i = 0; i < workload.size(); ++i) {
    result.base_est_cost +=
        workload[i].weight * result.base_plans[i]->est_total_cost;
  }

  // Phase (a): query-level search seeds the candidate pool. Each query's
  // tuner runs independently (possibly on a worker thread); the merge
  // below walks results in workload order and the pool is then sorted by
  // canonical name, so the pool's contents and order are independent of
  // scheduling. Nested fan-out inside qtuner degrades to inline loops on
  // worker threads (see ThreadPool::OnWorkerThread).
  std::vector<IndexDef> pool;
  {
    QueryLevelTuner::Options qopts;
    qopts.max_new_indexes = options_.query_phase_max_indexes;
    qopts.storage_budget_bytes = options_.storage_budget_bytes;
    qopts.pool = tp;
    qopts.cancel = options_.cancel;
    QueryLevelTuner qtuner(db_, what_if_, candidates_, qopts);
    std::vector<QueryTuningResult> qresults(workload.size());
    TunerParallelFor(tp, workload.size(), [&](size_t i) {
      qresults[i] = qtuner.Tune(workload[i].query, base, comparator);
    });
    std::set<std::string> seen;
    for (const QueryTuningResult& qr : qresults) {
      for (const IndexDef& def : qr.new_indexes) {
        if (seen.insert(def.CanonicalName()).second) pool.push_back(def);
      }
    }
    std::sort(pool.begin(), pool.end(),
              [](const IndexDef& a, const IndexDef& b) {
                return a.CanonicalName() < b.CanonicalName();
              });
  }

  // Phase (b): greedy selection by weighted estimated benefit under the
  // per-query no-regression constraint.
  Configuration current = base;
  std::vector<std::shared_ptr<const PhysicalPlan>> current_plans =
      result.base_plans;
  double current_cost = result.base_est_cost;

  for (int round = 0; round < options_.max_new_indexes; ++round) {
    if (Cancelled(options_.cancel)) break;  // Stop at a round boundary.
    AIMAI_COUNTER_INC("tuner.workload.rounds");

    // Candidates admissible this round, with their configurations.
    std::vector<size_t> eligible;
    std::vector<Configuration> configs;
    for (size_t k = 0; k < pool.size(); ++k) {
      if (current.Contains(pool[k].CanonicalName())) continue;
      Configuration next = current;
      next.Add(pool[k]);
      if (options_.storage_budget_bytes > 0 &&
          next.EstimateSizeBytes(*db_) > options_.storage_budget_bytes) {
        continue;
      }
      eligible.push_back(k);
      configs.push_back(std::move(next));
    }

    // Parallel mode prefetches every (candidate, query) plan into
    // index-addressed slots; serial mode leaves the slots empty and the
    // reduce fills them lazily, keeping the serial early break on the
    // first regressed query. Plans per key are deterministic, so the
    // reduce — always serial, always in candidate-then-query order —
    // adopts the same index with the same cost either way.
    const size_t nq = workload.size();
    std::vector<std::vector<std::shared_ptr<const PhysicalPlan>>> prefetched(
        eligible.size());
    if (WouldParallelize(tp, eligible.size() * nq)) {
      for (auto& slot : prefetched) slot.resize(nq);
      TunerParallelFor(tp, eligible.size() * nq, [&](size_t t) {
        // A cancel (user, drain, or watchdog escalation) stops the
        // prefetch fan-out at per-plan granularity instead of letting a
        // large round run its full O(candidates x queries) course.
        if (Cancelled(options_.cancel)) return;
        const size_t j = t / nq;
        const size_t i = t % nq;
        AIMAI_SPAN("tuner.candidate_eval");
        prefetched[j][i] = what_if_->Optimize(workload[i].query, configs[j]);
      });
      // An abandoned prefetch leaves null slots; stop at the round
      // boundary before Prime() or the reduce can touch them. Nothing is
      // adopted, so the mid-round stop never changes the configuration.
      if (Cancelled(options_.cancel)) break;
      // Announce the round's decision pairs. A batched comparator
      // featurizes and labels them with one model batch; the replay below
      // is unchanged (and bit-identical — priming never alters answers).
      std::vector<PlanPairView> pending;
      pending.reserve(eligible.size() * nq);
      for (size_t j = 0; j < eligible.size(); ++j) {
        for (size_t i = 0; i < nq; ++i) {
          pending.push_back({result.base_plans[i].get(),
                             prefetched[j][i].get()});
        }
      }
      comparator.Prime(pending, tp);
    }

    const IndexDef* best_index = nullptr;
    double best_cost = current_cost;
    std::vector<std::shared_ptr<const PhysicalPlan>> best_plans;

    bool cancelled_mid = false;
    for (size_t j = 0; j < eligible.size(); ++j) {
      if (Cancelled(options_.cancel)) {
        cancelled_mid = true;
        break;
      }
      double cost = 0;
      std::vector<std::shared_ptr<const PhysicalPlan>> plans;
      bool regressed = false;
      AIMAI_COUNTER_INC("tuner.workload.candidates_evaluated");
      for (size_t i = 0; i < nq; ++i) {
        // Lazy (serial) mode issues a what-if call per slot, so it polls
        // per plan; prefetched mode is pure memory reads and the
        // per-candidate poll above suffices.
        if (prefetched[j].empty() && Cancelled(options_.cancel)) {
          cancelled_mid = true;
          break;
        }
        std::shared_ptr<const PhysicalPlan> plan =
            !prefetched[j].empty()
                ? prefetched[j][i]
                : what_if_->Optimize(workload[i].query, configs[j]);
        AIMAI_SPAN("tuner.comparator_decide");
        if (comparator.IsRegression(*result.base_plans[i], *plan)) {
          regressed = true;
          break;
        }
        cost += workload[i].weight * plan->est_total_cost;
        plans.push_back(std::move(plan));
      }
      if (cancelled_mid) break;
      if (regressed) {
        AIMAI_COUNTER_INC("tuner.workload.regression_vetoes");
        continue;
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_index = &pool[eligible[j]];
        best_plans = std::move(plans);
      }
    }
    // Mid-round stop: adopt nothing — a cancelled round is unspent, so a
    // resumed or retried run replays it bit-identically.
    if (cancelled_mid) break;

    if (best_index == nullptr) break;
    AIMAI_COUNTER_INC("tuner.workload.indexes_adopted");
    current.Add(*best_index);
    result.new_indexes.push_back(*best_index);
    current_plans = std::move(best_plans);
    current_cost = best_cost;
  }

  result.recommended = current;
  result.final_plans = std::move(current_plans);
  result.final_est_cost = current_cost;
  return result;
}

StatusOr<WorkloadTuningResult> WorkloadLevelTuner::TryTune(
    const std::vector<WorkloadQuery>& workload, const Configuration& base,
    const CostComparator& comparator) {
  if (db_ == nullptr || what_if_ == nullptr || candidates_ == nullptr) {
    return Status::FailedPrecondition("WorkloadLevelTuner is not fully wired");
  }
  if (workload.empty()) {
    return Status::InvalidArgument("workload is empty");
  }
  for (const WorkloadQuery& wq : workload) {
    AIMAI_RETURN_IF_ERROR(what_if_->ValidateQuery(wq.query));
    if (wq.weight < 0) {
      return Status::InvalidArgument("workload weight is negative");
    }
  }
  WorkloadTuningResult result = Tune(workload, base, comparator);
  if (Cancelled(options_.cancel)) {
    return Status::Cancelled("workload tuning cancelled mid-round");
  }
  return result;
}

}  // namespace aimai
