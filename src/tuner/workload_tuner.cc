#include "tuner/workload_tuner.h"

#include <set>

#include "common/check.h"
#include "obs/obs.h"

namespace aimai {

WorkloadTuningResult WorkloadLevelTuner::Tune(
    const std::vector<WorkloadQuery>& workload, const Configuration& base,
    const CostComparator& comparator) {
  AIMAI_SPAN("tuner.workload_tune");
  WorkloadTuningResult result;
  result.recommended = base;

  // Base plans and cost.
  for (const WorkloadQuery& wq : workload) {
    const PhysicalPlan* plan = what_if_->Optimize(wq.query, base);
    result.base_plans.push_back(plan);
    result.base_est_cost += wq.weight * plan->est_total_cost;
  }

  // Phase (a): query-level search seeds the candidate pool.
  std::vector<IndexDef> pool;
  std::set<std::string> seen;
  {
    QueryLevelTuner::Options qopts;
    qopts.max_new_indexes = options_.query_phase_max_indexes;
    qopts.storage_budget_bytes = options_.storage_budget_bytes;
    QueryLevelTuner qtuner(db_, what_if_, candidates_, qopts);
    for (const WorkloadQuery& wq : workload) {
      const QueryTuningResult qr = qtuner.Tune(wq.query, base, comparator);
      for (const IndexDef& def : qr.new_indexes) {
        if (seen.insert(def.CanonicalName()).second) pool.push_back(def);
      }
    }
  }

  // Phase (b): greedy selection by weighted estimated benefit under the
  // per-query no-regression constraint.
  Configuration current = base;
  std::vector<const PhysicalPlan*> current_plans = result.base_plans;
  double current_cost = result.base_est_cost;

  for (int round = 0; round < options_.max_new_indexes; ++round) {
    AIMAI_COUNTER_INC("tuner.workload.rounds");
    const IndexDef* best_index = nullptr;
    double best_cost = current_cost;
    std::vector<const PhysicalPlan*> best_plans;

    for (const IndexDef& cand : pool) {
      if (current.Contains(cand.CanonicalName())) continue;
      Configuration next = current;
      next.Add(cand);
      if (options_.storage_budget_bytes > 0 &&
          next.EstimateSizeBytes(*db_) > options_.storage_budget_bytes) {
        continue;
      }
      double cost = 0;
      std::vector<const PhysicalPlan*> plans;
      bool regressed = false;
      AIMAI_COUNTER_INC("tuner.workload.candidates_evaluated");
      for (size_t i = 0; i < workload.size(); ++i) {
        const PhysicalPlan* plan = what_if_->Optimize(workload[i].query, next);
        AIMAI_SPAN("tuner.comparator_decide");
        if (comparator.IsRegression(*result.base_plans[i], *plan)) {
          regressed = true;
          break;
        }
        plans.push_back(plan);
        cost += workload[i].weight * plan->est_total_cost;
      }
      if (regressed) {
        AIMAI_COUNTER_INC("tuner.workload.regression_vetoes");
        continue;
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_index = &cand;
        best_plans = std::move(plans);
      }
    }

    if (best_index == nullptr) break;
    AIMAI_COUNTER_INC("tuner.workload.indexes_adopted");
    current.Add(*best_index);
    result.new_indexes.push_back(*best_index);
    current_plans = std::move(best_plans);
    current_cost = best_cost;
  }

  result.recommended = current;
  result.final_plans = std::move(current_plans);
  result.final_est_cost = current_cost;
  return result;
}

}  // namespace aimai
