#ifndef AIMAI_TUNER_CONTINUOUS_TUNER_H_
#define AIMAI_TUNER_CONTINUOUS_TUNER_H_

#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "exec/execution_cost.h"
#include "exec/executor.h"
#include "models/repository.h"
#include "robustness/fault_injector.h"
#include "robustness/resilience.h"
#include "robustness/retry_policy.h"
#include "tuner/workload_tuner.h"

namespace aimai {

/// Everything bound to one database needed to implement configurations
/// for real: optimize, materialize indexes, execute, and measure cost.
struct TuningEnv {
  Database* db = nullptr;
  int database_id = 0;
  StatisticsCatalog* stats = nullptr;
  WhatIfOptimizer* what_if = nullptr;
  IndexManager* indexes = nullptr;
  Executor* executor = nullptr;
  ExecutionCostModel* exec_cost = nullptr;
  Rng* noise_rng = nullptr;
  /// Repeated executions whose median labels the cost (§2.2).
  int cost_samples = 5;

  /// Optional fault injection (chaos testing); nullptr = fault-free.
  FaultInjector* faults = nullptr;
  /// Retry policy for failed/timed-out executions and what-if calls.
  RetryOptions retry;
  /// Counters accumulated by the resilient paths below.
  ResilienceStats resilience;

  struct Measurement {
    std::unique_ptr<PhysicalPlan> plan;  // Executed, with actual stats.
    double median_cost = 0;
    int samples_used = 0;  // < cost_samples when degraded under faults.
  };

  /// Implements `config`, runs `query`'s optimizer-chosen plan, and
  /// measures the median noisy execution cost. Resilient: what-if
  /// timeouts and execution failures are retried with backoff, lost cost
  /// samples degrade the measurement to fewer samples, and a permanent
  /// failure comes back as an error Status instead of an abort.
  StatusOr<Measurement> TryExecuteAndMeasure(const QuerySpec& query,
                                             const Configuration& config);

  /// CHECK-wrapping convenience for fault-free callers (collection,
  /// benches): aborts if TryExecuteAndMeasure permanently fails, which
  /// cannot happen without an armed FaultInjector.
  Measurement ExecuteAndMeasure(const QuerySpec& query,
                                const Configuration& config);

  /// Records a measurement into the execution-data repository (the
  /// "passive collection" path of §2.3). Returns the plan id.
  int Record(const QuerySpec& query, const Configuration& config,
             Measurement measurement, ExecutionDataRepository* repo) const;
};

/// Continuous index tuning (Problem Statement 2, evaluated in §7.9):
/// invoke the tuner iteratively, implement its recommendation, execute,
/// revert on observed regression, and let adaptive comparators retrain on
/// the passively collected execution data between iterations.
///
/// Resilience: measurement failures cost an iteration, not the run;
/// reverts are re-measured to verify the prior configuration really was
/// restored; recommendations that regress repeatedly are quarantined so
/// the loop stops re-implementing a known-bad configuration.
class ContinuousTuner {
 public:
  struct Options {
    int iterations = 10;
    int max_indexes_per_iteration = 5;
    /// λ: observed-cost increase that counts as a regression (and triggers
    /// revert), and the improvement significance used for reporting.
    double regression_threshold = 0.2;
    /// Opt/OptTr semantics: a reverted regression ends tuning because the
    /// estimate-driven tuner would just repeat the recommendation.
    bool stop_on_regression = false;
    int64_t storage_budget_bytes = 0;
    /// Re-measure under the restored configuration after each revert and
    /// confirm the regression is gone (cost back inside the λ band and
    /// the optimizer's plan identical to the pre-regression one).
    bool verify_reverts = true;
    /// A recommendation fingerprint observed to regress this many times
    /// is quarantined: never implemented again within the run.
    int quarantine_after = 2;
    /// Pool for parallel what-if fan-out (passed through to the inner
    /// tuners; also used to warm the cache ahead of measurement loops).
    /// nullptr = SharedPool(). Execution and index materialization stay
    /// serial — only pure optimizer calls run on workers.
    ThreadPool* pool = nullptr;
    /// Cooperative cancellation / drain, polled at every iteration
    /// boundary (and inside the inner tuners' greedy rounds, which
    /// inherit the token). When it fires, resumable runs stop with their
    /// QueryState intact — the service checkpoints and later resumes.
    const CancellationToken* cancel = nullptr;
  };

  /// Comparators may be retrained between iterations (adaptive models);
  /// the factory is called at the start of every iteration.
  using ComparatorFactory = std::function<std::unique_ptr<CostComparator>()>;
  /// Invoked after each iteration's execution data lands in the repo.
  using AdaptHook = std::function<void()>;

  struct IterationRecord {
    int iteration = 0;
    int num_new_indexes = 0;
    double measured_cost = 0;  // Cost of the recommended configuration.
    bool regressed = false;    // Reverted to the previous configuration.
    bool failed = false;       // Measurement failed; configuration kept.
    bool quarantined = false;  // Recommendation was benched; not executed.
  };

  struct QueryTrace {
    std::string query_name;
    double initial_cost = 0;
    double final_cost = 0;  // After reverts.
    std::vector<IterationRecord> iterations;
    bool regress_final = false;     // Last attempted iteration regressed.
    bool improve_cumulative = false;  // final <= (1 - λ) * initial.
    bool completed = true;  // False if the baseline was unmeasurable.
    Configuration final_config;
  };

  /// The whole of a single-query continuous-tuning run's mutable state,
  /// externalized so a run can be paused at an iteration boundary (service
  /// drain), checkpointed through the repository format, and resumed —
  /// possibly by a different service instance — with bit-identical results
  /// to an uninterrupted run (given the same TuningEnv, whose noise RNG
  /// carries the measurement stream). Containers are ordered so the
  /// serialized form is deterministic.
  struct QueryState {
    bool initialized = false;  // Baseline measured; `current` is valid.
    bool finished = false;     // Natural stop reached; resume is a no-op.
    int next_iteration = 1;    // 1-based, matches IterationRecord.
    Configuration current;
    double initial_cost = 0;
    double current_cost = 0;
    double current_est_cost = 0;
    bool regress_final = false;
    std::string last_skipped_fp;
    std::map<std::string, int> regression_counts;
    std::set<std::string> quarantined;
    std::vector<IterationRecord> iterations;
  };

  ContinuousTuner(TuningEnv* env, CandidateGenerator* candidates,
                  Options options)
      : env_(env), candidates_(candidates), options_(options) {}

  /// Single-query continuous tuning (Fig. 11 / Fig. 14).
  QueryTrace TuneQuery(const QuerySpec& query, const Configuration& initial,
                       const ComparatorFactory& comparator_factory,
                       ExecutionDataRepository* repo,
                       const AdaptHook& adapt_hook);

  /// Resumable variant: runs iterations starting from `state` (initialize
  /// a fresh QueryState with state->current = the initial configuration)
  /// and mutates it in place. Stops early — with the state resumable and
  /// `state->finished == false` — when options.cancel fires at an
  /// iteration boundary; otherwise runs to a natural stop and sets
  /// `state->finished`. The returned trace reflects everything done so
  /// far, across all resumptions.
  QueryTrace TuneQueryResumable(const QuerySpec& query, QueryState* state,
                                const ComparatorFactory& comparator_factory,
                                ExecutionDataRepository* repo,
                                const AdaptHook& adapt_hook);

  /// Status-returning entry point (the service surface): validates the
  /// environment wiring and the query, and reports kCancelled when the
  /// token fired before the run finished.
  StatusOr<QueryTrace> TryTuneQuery(const QuerySpec& query,
                                    const Configuration& initial,
                                    const ComparatorFactory& comparator_factory,
                                    ExecutionDataRepository* repo,
                                    const AdaptHook& adapt_hook);

  struct WorkloadTrace {
    double initial_cost = 0;
    double final_cost = 0;
    std::vector<IterationRecord> iterations;
    bool completed = true;
    Configuration final_config;
  };

  /// Workload-level continuous tuning (Table 4): the configuration reverts
  /// if any query in the workload regresses.
  WorkloadTrace TuneWorkload(const std::vector<WorkloadQuery>& workload,
                             const Configuration& initial,
                             const ComparatorFactory& comparator_factory,
                             ExecutionDataRepository* repo,
                             const AdaptHook& adapt_hook);

  /// Assembles the user-facing trace for a (possibly partial) state.
  static QueryTrace TraceFromState(const QuerySpec& query,
                                   const QueryState& state);

 private:
  /// Re-measures under the restored configuration and checks the revert
  /// held: the optimizer's plan estimate matches the pre-regression plan
  /// and the measured cost is back inside the regression band (with slack
  /// for measurement noise). Counts the outcome in env->resilience.
  void VerifyRevert(const QuerySpec& query, const Configuration& restored,
                    double expected_cost, double expected_est_cost);

  TuningEnv* env_;
  CandidateGenerator* candidates_;
  Options options_;
};

}  // namespace aimai

#endif  // AIMAI_TUNER_CONTINUOUS_TUNER_H_
