#ifndef AIMAI_TUNER_CONTINUOUS_TUNER_H_
#define AIMAI_TUNER_CONTINUOUS_TUNER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exec/execution_cost.h"
#include "exec/executor.h"
#include "models/repository.h"
#include "tuner/workload_tuner.h"

namespace aimai {

/// Everything bound to one database needed to implement configurations
/// for real: optimize, materialize indexes, execute, and measure cost.
struct TuningEnv {
  Database* db = nullptr;
  int database_id = 0;
  StatisticsCatalog* stats = nullptr;
  WhatIfOptimizer* what_if = nullptr;
  IndexManager* indexes = nullptr;
  Executor* executor = nullptr;
  ExecutionCostModel* exec_cost = nullptr;
  Rng* noise_rng = nullptr;
  /// Repeated executions whose median labels the cost (§2.2).
  int cost_samples = 5;

  struct Measurement {
    std::unique_ptr<PhysicalPlan> plan;  // Executed, with actual stats.
    double median_cost = 0;
  };

  /// Implements `config`, runs `query`'s optimizer-chosen plan, and
  /// measures the median noisy execution cost.
  Measurement ExecuteAndMeasure(const QuerySpec& query,
                                const Configuration& config);

  /// Records a measurement into the execution-data repository (the
  /// "passive collection" path of §2.3). Returns the plan id.
  int Record(const QuerySpec& query, const Configuration& config,
             Measurement measurement, ExecutionDataRepository* repo) const;
};

/// Continuous index tuning (Problem Statement 2, evaluated in §7.9):
/// invoke the tuner iteratively, implement its recommendation, execute,
/// revert on observed regression, and let adaptive comparators retrain on
/// the passively collected execution data between iterations.
class ContinuousTuner {
 public:
  struct Options {
    int iterations = 10;
    int max_indexes_per_iteration = 5;
    /// λ: observed-cost increase that counts as a regression (and triggers
    /// revert), and the improvement significance used for reporting.
    double regression_threshold = 0.2;
    /// Opt/OptTr semantics: a reverted regression ends tuning because the
    /// estimate-driven tuner would just repeat the recommendation.
    bool stop_on_regression = false;
    int64_t storage_budget_bytes = 0;
  };

  /// Comparators may be retrained between iterations (adaptive models);
  /// the factory is called at the start of every iteration.
  using ComparatorFactory = std::function<std::unique_ptr<CostComparator>()>;
  /// Invoked after each iteration's execution data lands in the repo.
  using AdaptHook = std::function<void()>;

  struct IterationRecord {
    int iteration = 0;
    int num_new_indexes = 0;
    double measured_cost = 0;  // Cost of the recommended configuration.
    bool regressed = false;    // Reverted to the previous configuration.
  };

  struct QueryTrace {
    std::string query_name;
    double initial_cost = 0;
    double final_cost = 0;  // After reverts.
    std::vector<IterationRecord> iterations;
    bool regress_final = false;     // Last attempted iteration regressed.
    bool improve_cumulative = false;  // final <= (1 - λ) * initial.
    Configuration final_config;
  };

  ContinuousTuner(TuningEnv* env, CandidateGenerator* candidates,
                  Options options)
      : env_(env), candidates_(candidates), options_(options) {}

  /// Single-query continuous tuning (Fig. 11 / Fig. 14).
  QueryTrace TuneQuery(const QuerySpec& query, const Configuration& initial,
                       const ComparatorFactory& comparator_factory,
                       ExecutionDataRepository* repo,
                       const AdaptHook& adapt_hook);

  struct WorkloadTrace {
    double initial_cost = 0;
    double final_cost = 0;
    std::vector<IterationRecord> iterations;
    Configuration final_config;
  };

  /// Workload-level continuous tuning (Table 4): the configuration reverts
  /// if any query in the workload regresses.
  WorkloadTrace TuneWorkload(const std::vector<WorkloadQuery>& workload,
                             const Configuration& initial,
                             const ComparatorFactory& comparator_factory,
                             ExecutionDataRepository* repo,
                             const AdaptHook& adapt_hook);

 private:
  TuningEnv* env_;
  CandidateGenerator* candidates_;
  Options options_;
};

}  // namespace aimai

#endif  // AIMAI_TUNER_CONTINUOUS_TUNER_H_
