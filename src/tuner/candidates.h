#ifndef AIMAI_TUNER_CANDIDATES_H_
#define AIMAI_TUNER_CANDIDATES_H_

#include <vector>

#include "catalog/configuration.h"
#include "optimizer/query.h"
#include "optimizer/statistics.h"

namespace aimai {

/// Syntactic candidate-index generation, following the classical recipe
/// [Chaudhuri & Narasayya '97]: indexable columns come from sargable
/// predicates, join conditions, grouping, and ordering; multi-column
/// candidates put equality columns (most selective first) before a range
/// column; covering variants add the remaining referenced columns as
/// includes.
class CandidateGenerator {
 public:
  struct Options {
    int max_per_table = 8;
    int max_per_query = 24;
    bool covering_variants = true;
    /// Covering variants are emitted only when at most this many include
    /// columns are needed (wide includes are unrealistic to maintain, and
    /// bounding them keeps seek + key-lookup plans in the search space).
    int max_include_columns = 2;
    /// Columnstore candidates are off by default: the tuner's search space
    /// is B-tree indexes (columnstores appear as initial configurations,
    /// as in the paper's TPC-DS 100g setup).
    bool columnstore_candidates = false;
  };

  CandidateGenerator(const Database* db, StatisticsCatalog* stats)
      : CandidateGenerator(db, stats, Options()) {}
  CandidateGenerator(const Database* db, StatisticsCatalog* stats,
                     Options options)
      : db_(db), stats_(stats), options_(options) {}

  /// Candidate indexes for one query, deduplicated, excluding those
  /// already in `existing`.
  std::vector<IndexDef> Generate(const QuerySpec& query,
                                 const Configuration& existing);

  /// Union of candidates over a workload.
  std::vector<IndexDef> GenerateForWorkload(
      const std::vector<WorkloadQuery>& workload,
      const Configuration& existing);

 private:
  std::vector<IndexDef> GenerateForTable(const QuerySpec& query,
                                         int table_id);

  const Database* db_;
  StatisticsCatalog* stats_;
  Options options_;
};

}  // namespace aimai

#endif  // AIMAI_TUNER_CANDIDATES_H_
