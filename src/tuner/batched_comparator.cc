#include "tuner/batched_comparator.h"

#include <algorithm>
#include <unordered_set>

#include "common/check.h"
#include "common/thread_pool.h"
#include "obs/obs.h"

namespace aimai {

ClassifierComparator::ClassifierComparator(
    std::shared_ptr<const Classifier> classifier, PairFeaturizer featurizer,
    Options options)
    : classifier_(std::move(classifier)),
      featurizer_(std::move(featurizer)),
      options_(options),
      features_(options.feature_cache_capacity) {
  AIMAI_CHECK(classifier_ != nullptr);
  if (options_.label_cache_capacity == 0) options_.label_cache_capacity = 1;
}

bool ClassifierComparator::IsRegression(const PhysicalPlan& p1,
                                        const PhysicalPlan& p2) const {
  return Label(p1, p2) == kRegression;
}

bool ClassifierComparator::IsImprovement(const PhysicalPlan& p1,
                                         const PhysicalPlan& p2) const {
  const int label = Label(p1, p2);
  if (label == kImprovement) return true;
  // Unsure: insignificant difference — defer to the optimizer (same
  // semantics as ModelComparator).
  return label == kUnsure && p2.est_total_cost < p1.est_total_cost;
}

int ClassifierComparator::Label(const PhysicalPlan& p1,
                                const PhysicalPlan& p2) const {
  return LabelForKey(Key{p1.ContentHash(), p2.ContentHash()}, p1, p2);
}

int ClassifierComparator::LabelForKey(const Key& key, const PhysicalPlan& p1,
                                      const PhysicalPlan& p2) const {
  {
    std::lock_guard<std::mutex> lock(labels_mu_);
    auto it = labels_.find(key);
    if (it != labels_.end()) {
      ++num_label_hits_;
      return it->second;
    }
  }
  const auto x = features_.GetOrCompute(featurizer_, p1, p2);
  int label = kUnsure;
  {
    AIMAI_SPAN("comparator.model_label");
    label = classifier_->Predict(x->data());
  }
  {
    std::lock_guard<std::mutex> lock(labels_mu_);
    auto it = labels_.find(key);
    if (it != labels_.end()) return it->second;  // A racer labeled it first.
    StoreLabelLocked(key, label);
  }
  // Outside the memo lock: the sink takes its own (the learning loop's)
  // lock and must never nest under labels_mu_.
  if (sink_ != nullptr) {
    sink_->OnDecision(key.first, key.second, label);
    AIMAI_COUNTER_INC("comparator.decisions_recorded");
  }
  return label;
}

void ClassifierComparator::StoreLabelLocked(const Key& key, int label) const {
  labels_.emplace(key, label);
  label_fifo_.push_back(key);
  while (labels_.size() > options_.label_cache_capacity) {
    labels_.erase(label_fifo_.front());
    label_fifo_.pop_front();
  }
}

void ClassifierComparator::Prime(const std::vector<PlanPairView>& pairs,
                                 ThreadPool* pool) const {
  if (pairs.empty()) return;
  AIMAI_SPAN("comparator.prime");

  // Deduplicate the round's pairs and drop ones already labeled. The
  // fan-out repeats the same base plan against many candidates, and the
  // what-if cache makes identical candidate plans common across rounds.
  std::vector<Key> keys;
  std::vector<PlanPairView> fresh;
  keys.reserve(pairs.size());
  fresh.reserve(pairs.size());
  {
    std::unordered_set<Key, KeyHash> seen;
    std::lock_guard<std::mutex> lock(labels_mu_);
    for (const PlanPairView& v : pairs) {
      if (v.p1 == nullptr || v.p2 == nullptr) continue;
      const Key key{v.p1->ContentHash(), v.p2->ContentHash()};
      if (labels_.find(key) != labels_.end()) continue;
      if (!seen.insert(key).second) continue;
      keys.push_back(key);
      fresh.push_back(v);
    }
  }
  if (fresh.empty()) return;

  const size_t n = fresh.size();
  const size_t dim = featurizer_.dim();
  const size_t k = static_cast<size_t>(classifier_->num_classes());

  // Featurize in parallel (through the memo, so scalar calls and later
  // rounds reuse the vectors), flattening into one row-major matrix.
  std::vector<double> rows(n * dim);
  ParallelFor(pool, n, [&](size_t i) {
    const auto x = features_.GetOrCompute(featurizer_, *fresh[i].p1,
                                          *fresh[i].p2);
    AIMAI_CHECK(x->size() == dim);
    std::copy(x->begin(), x->end(), rows.begin() + static_cast<long>(i * dim));
  });

  // One batched inference for the whole round.
  std::vector<double> probs(n * k);
  {
    AIMAI_SPAN("comparator.batch_predict");
    classifier_->PredictBatch(rows.data(), n, dim, probs.data());
  }
  AIMAI_COUNTER_INC("comparator.batch_calls");
  AIMAI_COUNTER_ADD("comparator.batched_pairs", static_cast<int64_t>(n));

  std::vector<std::pair<Key, int>> stored;
  {
    std::lock_guard<std::mutex> lock(labels_mu_);
    for (size_t i = 0; i < n; ++i) {
      if (labels_.find(keys[i]) != labels_.end()) continue;
      const int label = Classifier::ArgmaxLabel(&probs[i * k], k);
      StoreLabelLocked(keys[i], label);
      ++num_batched_labels_;
      if (sink_ != nullptr) stored.emplace_back(keys[i], label);
    }
  }
  for (const auto& [key, label] : stored) {
    sink_->OnDecision(key.first, key.second, label);
    AIMAI_COUNTER_INC("comparator.decisions_recorded");
  }
}

int64_t ClassifierComparator::num_batched_labels() const {
  std::lock_guard<std::mutex> lock(labels_mu_);
  return num_batched_labels_;
}

int64_t ClassifierComparator::num_label_hits() const {
  std::lock_guard<std::mutex> lock(labels_mu_);
  return num_label_hits_;
}

}  // namespace aimai
