#include "tuner/comparator.h"

// Interface implementations are header-inline; this translation unit
// anchors the vtable.

namespace aimai {}  // namespace aimai
