#include "tuner/candidates.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "exec/expression.h"

namespace aimai {

namespace {

/// Adds `def` to `out` if its canonical form is new.
void AddUnique(std::vector<IndexDef>* out, std::set<std::string>* seen,
               IndexDef def) {
  const std::string name = def.CanonicalName();
  if (seen->insert(name).second) out->push_back(std::move(def));
}

}  // namespace

std::vector<IndexDef> CandidateGenerator::GenerateForTable(
    const QuerySpec& q, int table_id) {
  const std::vector<Predicate> preds = q.PredicatesOn(table_id);
  const std::vector<int> refcols = q.ReferencedColumns(table_id);

  // Classify indexable columns.
  std::vector<int> eq_cols;
  std::vector<int> range_cols;
  for (const auto& [col, b] : ResolveConjunction(*db_, preds)) {
    const bool is_eq = b.has_lo && b.has_hi && !b.lo_open && !b.hi_open &&
                       b.lo == b.hi;
    if (is_eq) {
      eq_cols.push_back(col);
    } else {
      range_cols.push_back(col);
    }
  }
  std::vector<int> join_cols;
  for (const JoinCond& j : q.JoinsOn(table_id)) {
    const ColumnRef& c = j.left.table_id == table_id ? j.left : j.right;
    if (std::find(join_cols.begin(), join_cols.end(), c.column_id) ==
        join_cols.end()) {
      join_cols.push_back(c.column_id);
    }
  }
  std::vector<int> group_cols;
  for (const ColumnRef& c : q.group_by) {
    if (c.table_id == table_id) group_cols.push_back(c.column_id);
  }
  std::vector<int> order_cols;
  for (const SortKey& s : q.order_by) {
    if (s.col.table_id == table_id) order_cols.push_back(s.col.column_id);
  }

  // Most selective equality columns first (fewer rows per distinct value).
  std::sort(eq_cols.begin(), eq_cols.end(), [&](int a, int b) {
    return stats_->DistinctCount(table_id, a) >
           stats_->DistinctCount(table_id, b);
  });

  std::vector<IndexDef> out;
  std::set<std::string> seen;
  auto make = [&](std::vector<int> keys) {
    if (keys.empty()) return;
    IndexDef def;
    def.table_id = table_id;
    def.key_columns = std::move(keys);
    AddUnique(&out, &seen, def);
    if (options_.covering_variants) {
      IndexDef cover = def;
      cover.include_columns.clear();
      for (int c : refcols) {
        if (std::find(cover.key_columns.begin(), cover.key_columns.end(),
                      c) == cover.key_columns.end()) {
          cover.include_columns.push_back(c);
        }
      }
      if (!cover.include_columns.empty() &&
          static_cast<int>(cover.include_columns.size()) <=
              options_.max_include_columns) {
        AddUnique(&out, &seen, std::move(cover));
      }
    }
  };

  // Single-column candidates.
  for (int c : eq_cols) make({c});
  for (int c : range_cols) make({c});
  for (int c : join_cols) make({c});

  // Multi-column: equality prefix, then each range column.
  if (!eq_cols.empty()) {
    make(eq_cols);
    for (int r : range_cols) {
      std::vector<int> keys = eq_cols;
      keys.push_back(r);
      make(std::move(keys));
    }
    // Join column leading (for nested-loop inners), then equalities.
    for (int j : join_cols) {
      std::vector<int> keys = {j};
      for (int c : eq_cols) {
        if (c != j) keys.push_back(c);
      }
      make(std::move(keys));
    }
  }

  // Grouping / ordering keys.
  make(group_cols);
  make(order_cols);

  if (static_cast<int>(out.size()) > options_.max_per_table) {
    out.resize(static_cast<size_t>(options_.max_per_table));
  }

  // Columnstore candidate for aggregation-heavy queries over this table.
  if (options_.columnstore_candidates && q.HasAggregation()) {
    IndexDef cs;
    cs.table_id = table_id;
    cs.is_columnstore = true;
    AddUnique(&out, &seen, std::move(cs));
  }
  return out;
}

std::vector<IndexDef> CandidateGenerator::Generate(
    const QuerySpec& query, const Configuration& existing) {
  std::vector<IndexDef> out;
  std::set<std::string> seen;
  for (int t : query.tables) {
    for (IndexDef& def : GenerateForTable(query, t)) {
      const std::string name = def.CanonicalName();
      if (existing.Contains(name)) continue;
      if (seen.insert(name).second) out.push_back(std::move(def));
    }
  }
  if (static_cast<int>(out.size()) > options_.max_per_query) {
    out.resize(static_cast<size_t>(options_.max_per_query));
  }
  return out;
}

std::vector<IndexDef> CandidateGenerator::GenerateForWorkload(
    const std::vector<WorkloadQuery>& workload,
    const Configuration& existing) {
  std::vector<IndexDef> out;
  std::set<std::string> seen;
  for (const WorkloadQuery& wq : workload) {
    for (IndexDef& def : Generate(wq.query, existing)) {
      if (seen.insert(def.CanonicalName()).second) {
        out.push_back(std::move(def));
      }
    }
  }
  return out;
}

}  // namespace aimai
