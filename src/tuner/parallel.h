#ifndef AIMAI_TUNER_PARALLEL_H_
#define AIMAI_TUNER_PARALLEL_H_

#include <cstdint>
#include <functional>

#include "common/thread_pool.h"
#include "obs/obs.h"

namespace aimai {

/// ParallelFor with tuner-side observability. The common-layer ThreadPool
/// cannot depend on obs (layering: aimai_obs sits above aimai_common), so
/// fan-out metrics are recorded here instead: `tuner.parallel.tasks`
/// counts tasks actually fanned out and the `tuner.pool.queue_depth`
/// gauge samples the pool's backlog at each fan-out point. Degrades to a
/// plain serial loop under exactly the same conditions as ParallelFor.
inline void TunerParallelFor(ThreadPool* pool, size_t n,
                             const std::function<void(size_t)>& fn) {
  if (WouldParallelize(pool, n)) {
    AIMAI_COUNTER_ADD("tuner.parallel.tasks", static_cast<int64_t>(n));
#if !defined(AIMAI_OBS_DISABLED)
    if (obs::Enabled()) {
      obs::Registry()
          .GetGauge("tuner.pool.queue_depth")
          ->Set(static_cast<double>(pool->queue_depth()));
    }
#endif
  }
  ParallelFor(pool, n, fn);
}

}  // namespace aimai

#endif  // AIMAI_TUNER_PARALLEL_H_
