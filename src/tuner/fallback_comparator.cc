#include "tuner/fallback_comparator.h"

#include "obs/obs.h"

namespace aimai {

bool FallbackComparator::IsRegression(const PhysicalPlan& p1,
                                      const PhysicalPlan& p2) const {
  return Decide(p1, p2, Question::kRegression);
}

bool FallbackComparator::IsImprovement(const PhysicalPlan& p1,
                                       const PhysicalPlan& p2) const {
  return Decide(p1, p2, Question::kImprovement);
}

bool FallbackComparator::FallbackDecide(const PhysicalPlan& p1,
                                        const PhysicalPlan& p2,
                                        Question q) const {
  if (stats_ != nullptr) ++stats_->comparator_fallbacks;
  return q == Question::kRegression ? fallback_.IsRegression(p1, p2)
                                    : fallback_.IsImprovement(p1, p2);
}

void FallbackComparator::Record(bool success) const {
  const CircuitBreaker::State before = breaker_.state();
  if (success) {
    breaker_.RecordSuccess();
  } else {
    breaker_.RecordFailure();
  }
  if (stats_ == nullptr) return;
  const CircuitBreaker::State after = breaker_.state();
  if (before != CircuitBreaker::State::kOpen &&
      after == CircuitBreaker::State::kOpen) {
    ++stats_->breaker_trips;
  }
  if (before == CircuitBreaker::State::kHalfOpen &&
      after == CircuitBreaker::State::kClosed) {
    ++stats_->breaker_recoveries;
  }
}

bool FallbackComparator::Decide(const PhysicalPlan& p1,
                                const PhysicalPlan& p2, Question q) const {
  // One decision at a time: breaker state and the unsure streak must see
  // a serialized decision stream (see the header note on determinism).
  std::lock_guard<std::mutex> lock(mu_);
  if (!breaker_.Allow()) return FallbackDecide(p1, p2, q);

  StatusOr<int> label = Status::Internal("label not produced");
  {
    AIMAI_SPAN("comparator.model_label");
    label = label_fn_(*features_.GetOrCompute(featurizer_, p1, p2));
  }
  if (!label.ok()) {
    AIMAI_COUNTER_INC("comparator.model_errors");
    unsure_streak_ = 0;
    Record(/*success=*/false);
    return FallbackDecide(p1, p2, q);
  }

  if (*label == kUnsure) {
    if (++unsure_streak_ >= options_.unsure_streak_threshold) {
      unsure_streak_ = 0;
      Record(/*success=*/false);
    } else if (breaker_.state() == CircuitBreaker::State::kHalfOpen) {
      // While probing, any clean inference is evidence the model is back;
      // feeding it to the breaker is what lets a cautious (unsure-heavy)
      // model ever close the circuit. In the closed state kUnsure stays
      // neutral so the streak rule keeps its consecutive-failure meaning.
      Record(/*success=*/true);
    }
  } else {
    unsure_streak_ = 0;
    Record(/*success=*/true);
  }

  // Same decision semantics as ModelComparator: the model gates, and on
  // kUnsure the optimizer's estimates break the tie.
  if (q == Question::kRegression) return *label == kRegression;
  if (*label == kImprovement) return true;
  return *label == kUnsure && p2.est_total_cost < p1.est_total_cost;
}

}  // namespace aimai
