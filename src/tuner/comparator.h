#ifndef AIMAI_TUNER_COMPARATOR_H_
#define AIMAI_TUNER_COMPARATOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "featurize/pair_featurizer.h"
#include "models/labeler.h"

namespace aimai {

class ThreadPool;

/// A (current, candidate) plan pair the tuner is about to ask a
/// comparator about. Non-owning: the tuner keeps the plans alive for the
/// duration of the round.
struct PlanPairView {
  const PhysicalPlan* p1 = nullptr;
  const PhysicalPlan* p2 = nullptr;
};

/// Observer of ML-comparator label decisions. Previously only the
/// fallback comparator recorded its outcomes (into its circuit breaker);
/// threading this sink through ClassifierComparator lets the service's
/// learning loop see every decision — scalar and batched — and join the
/// predicted labels against the ground truth measured executions reveal.
/// Fired once per distinct ordered pair (label-memo hits do not repeat);
/// implementations must be thread-safe (batched rounds fire from runner
/// threads while pool workers may resolve scalar labels).
class ComparatorDecisionSink {
 public:
  virtual ~ComparatorDecisionSink() = default;
  /// `h1`/`h2` are the pair's plan ContentHash()es (estimate-only, so a
  /// later measured execution of the same plan joins back to the
  /// decision); `label` is the predicted PairLabel.
  virtual void OnDecision(uint64_t h1, uint64_t h2, int label) = 0;
};

/// The cost-comparison oracle the index tuner consults (§5). Given the
/// plan under the current configuration (p1) and the plan under a
/// hypothetical configuration (p2), answers the two gating questions:
/// would p2 regress, and would p2 improve.
class CostComparator {
 public:
  virtual ~CostComparator() = default;

  /// Whether adopting p2 is predicted to regress the query.
  virtual bool IsRegression(const PhysicalPlan& p1,
                            const PhysicalPlan& p2) const = 0;

  /// Whether adopting p2 is predicted to significantly improve the query.
  virtual bool IsImprovement(const PhysicalPlan& p1,
                             const PhysicalPlan& p2) const = 0;

  /// Hint that the tuner is about to ask about `pairs` (candidate
  /// fan-out). Batched comparators featurize in parallel on `pool` and
  /// answer every pair with one model PredictBatch; the default is a
  /// no-op. Priming must never change an answer: subsequent
  /// IsRegression / IsImprovement calls return exactly what they would
  /// have returned without the hint (labels are pure functions of the
  /// pair). `pool` may be null (serial featurization).
  virtual void Prime(const std::vector<PlanPairView>& pairs,
                     ThreadPool* pool) const {
    (void)pairs;
    (void)pool;
  }
};

/// Decision thresholds shared by the estimate-driven comparators. Kept as
/// a struct (not loose doubles) so session/service options can carry and
/// validate them as one unit.
struct ComparatorOptions {
  /// Improvements must beat the current plan by this fraction.
  /// 0 reproduces the plain tuner ("Opt"); 0.2 the thresholded "OptTr".
  double improvement_threshold = 0.0;
  /// Regressions are flagged beyond (1 + regression_threshold) x.
  double regression_threshold = 0.0;
};

/// The classical tuner's comparator: trust the optimizer's estimated
/// total costs (see ComparatorOptions for the threshold semantics).
class OptimizerComparator : public CostComparator {
 public:
  explicit OptimizerComparator(const ComparatorOptions& options)
      : improvement_threshold_(options.improvement_threshold),
        regression_threshold_(options.regression_threshold) {}
  explicit OptimizerComparator(double improvement_threshold = 0.0,
                               double regression_threshold = 0.0)
      : improvement_threshold_(improvement_threshold),
        regression_threshold_(regression_threshold) {}

  bool IsRegression(const PhysicalPlan& p1,
                    const PhysicalPlan& p2) const override {
    return p2.est_total_cost > (1.0 + regression_threshold_) *
                                   p1.est_total_cost;
  }
  bool IsImprovement(const PhysicalPlan& p1,
                     const PhysicalPlan& p2) const override {
    return p2.est_total_cost < (1.0 - improvement_threshold_) *
                                   p1.est_total_cost;
  }

 private:
  double improvement_threshold_;
  double regression_threshold_;
};

/// The ML-augmented comparator (§5): a label predictor (offline classifier
/// or adaptive strategy) gates regressions; on `unsure` the tuner falls
/// back to the optimizer's estimates, keeping the search making progress
/// on insignificant differences.
class ModelComparator : public CostComparator {
 public:
  /// `label_fn` maps a pair feature vector to a PairLabel.
  using LabelFn = std::function<int(const std::vector<double>&)>;

  ModelComparator(PairFeaturizer featurizer, LabelFn label_fn)
      : featurizer_(std::move(featurizer)), label_fn_(std::move(label_fn)) {}

  bool IsRegression(const PhysicalPlan& p1,
                    const PhysicalPlan& p2) const override {
    return Label(p1, p2) == kRegression;
  }
  bool IsImprovement(const PhysicalPlan& p1,
                     const PhysicalPlan& p2) const override {
    const int label = Label(p1, p2);
    if (label == kImprovement) return true;
    // Unsure: insignificant difference — defer to the optimizer.
    return label == kUnsure && p2.est_total_cost < p1.est_total_cost;
  }

  int Label(const PhysicalPlan& p1, const PhysicalPlan& p2) const {
    return label_fn_(featurizer_.Featurize(p1, p2));
  }

 private:
  PairFeaturizer featurizer_;
  LabelFn label_fn_;
};

}  // namespace aimai

#endif  // AIMAI_TUNER_COMPARATOR_H_
