#ifndef AIMAI_TUNER_WORKLOAD_TUNER_H_
#define AIMAI_TUNER_WORKLOAD_TUNER_H_

#include <memory>
#include <vector>

#include "tuner/query_tuner.h"

namespace aimai {

/// Result of workload-level tuning. Plans are shared with the what-if
/// cache and pinned here — valid after cache clears and evictions.
struct WorkloadTuningResult {
  Configuration recommended;
  std::vector<IndexDef> new_indexes;
  /// Final per-query plans under the recommendation (workload order).
  std::vector<std::shared_ptr<const PhysicalPlan>> final_plans;
  std::vector<std::shared_ptr<const PhysicalPlan>> base_plans;
  double base_est_cost = 0;   // Weighted optimizer cost under base config.
  double final_est_cost = 0;  // Under the recommendation.
};

/// Workload-level search (§5, phase b): pool candidates from the
/// query-level phase, then greedily add the index with the best weighted
/// estimated-cost reduction, subject to the storage budget, the index
/// count cap, and the per-query no-regression constraint — the comparator
/// must not flag ANY query's plan under the new configuration as a
/// regression versus its plan under the invocation configuration.
class WorkloadLevelTuner {
 public:
  struct Options {
    int max_new_indexes = 5;
    int64_t storage_budget_bytes = 0;  // 0 = unlimited.
    int query_phase_max_indexes = 3;   // Per-query candidate depth.
    /// Pool for parallel fan-out; nullptr = SharedPool(). Phase (a) runs
    /// whole per-query tuners concurrently and phase (b) fans out the
    /// per-candidate what-if evaluations; the greedy reduce itself stays
    /// serial with ties broken by canonical index name, so the
    /// recommendation is identical at any thread count (given a
    /// deterministic comparator — see FallbackComparator's caveat).
    ThreadPool* pool = nullptr;
    /// Cooperative cancellation, polled before phase (a) and at every
    /// phase-(b) round boundary (and inside the per-query tuners, which
    /// inherit the token). nullptr = never cancelled.
    const CancellationToken* cancel = nullptr;
  };

  WorkloadLevelTuner(const Database* db, WhatIfOptimizer* what_if,
                     CandidateGenerator* candidates)
      : WorkloadLevelTuner(db, what_if, candidates, Options()) {}
  WorkloadLevelTuner(const Database* db, WhatIfOptimizer* what_if,
                     CandidateGenerator* candidates, Options options)
      : db_(db),
        what_if_(what_if),
        candidates_(candidates),
        options_(options) {}

  WorkloadTuningResult Tune(const std::vector<WorkloadQuery>& workload,
                            const Configuration& base,
                            const CostComparator& comparator);

  /// Status-returning entry point: validates wiring and every workload
  /// query, rejects empty workloads, and reports kCancelled when the
  /// cancellation token fired mid-search.
  StatusOr<WorkloadTuningResult> TryTune(
      const std::vector<WorkloadQuery>& workload, const Configuration& base,
      const CostComparator& comparator);

 private:
  const Database* db_;
  WhatIfOptimizer* what_if_;
  CandidateGenerator* candidates_;
  Options options_;
};

}  // namespace aimai

#endif  // AIMAI_TUNER_WORKLOAD_TUNER_H_
