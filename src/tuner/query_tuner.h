#ifndef AIMAI_TUNER_QUERY_TUNER_H_
#define AIMAI_TUNER_QUERY_TUNER_H_

#include <memory>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "optimizer/what_if.h"
#include "tuner/candidates.h"
#include "tuner/comparator.h"

namespace aimai {

/// Result of one tuner invocation for a query. Plans are shared with the
/// what-if cache and pinned here: they stay valid even if the cache is
/// cleared or evicts between Tune() and the caller reading the result.
struct QueryTuningResult {
  Configuration recommended;          // Base config + chosen indexes.
  std::vector<IndexDef> new_indexes;  // The delta over the base config.
  std::shared_ptr<const PhysicalPlan> base_plan;   // Under base config.
  std::shared_ptr<const PhysicalPlan> final_plan;  // Under recommendation.
};

/// Query-level search (§5, phase a): greedy forward selection of candidate
/// indexes using the what-if API, gated by a CostComparator.
///
/// Every candidate configuration must pass `!IsRegression(base_plan,
/// candidate_plan)` — the no-regression constraint against the invocation
/// configuration — and is adopted as the new best only when
/// `IsImprovement(best_plan, candidate_plan)` holds, which keeps the tuner
/// "in-sync" with the optimizer: only optimizer-chosen plans are ever
/// compared.
class QueryLevelTuner {
 public:
  struct Options {
    int max_new_indexes = 5;
    int64_t storage_budget_bytes = 0;  // 0 = unlimited.
    /// Pool for parallel candidate evaluation; nullptr = SharedPool().
    /// Only the pure what-if calls fan out — comparator decisions are
    /// replayed serially in candidate order, so recommendations are
    /// identical at any thread count (given a deterministic comparator).
    ThreadPool* pool = nullptr;
    /// Cooperative cancellation, polled at every greedy-round boundary.
    /// Tune() returns the partial result accumulated so far; TryTune()
    /// reports kCancelled instead. nullptr = never cancelled.
    const CancellationToken* cancel = nullptr;
  };

  QueryLevelTuner(const Database* db, WhatIfOptimizer* what_if,
                  CandidateGenerator* candidates)
      : QueryLevelTuner(db, what_if, candidates, Options()) {}
  QueryLevelTuner(const Database* db, WhatIfOptimizer* what_if,
                  CandidateGenerator* candidates, Options options)
      : db_(db),
        what_if_(what_if),
        candidates_(candidates),
        options_(options) {}

  QueryTuningResult Tune(const QuerySpec& query, const Configuration& base,
                         const CostComparator& comparator);

  /// Status-returning entry point for user-supplied input (the service
  /// surface): validates wiring and the query against the database, and
  /// reports kCancelled when the cancellation token fired mid-search.
  StatusOr<QueryTuningResult> TryTune(const QuerySpec& query,
                                      const Configuration& base,
                                      const CostComparator& comparator);

 private:
  const Database* db_;
  WhatIfOptimizer* what_if_;
  CandidateGenerator* candidates_;
  Options options_;
};

}  // namespace aimai

#endif  // AIMAI_TUNER_QUERY_TUNER_H_
