#include "tuner/continuous_tuner.h"

#include "common/check.h"
#include "common/stats.h"
#include "tuner/query_tuner.h"

namespace aimai {

TuningEnv::Measurement TuningEnv::ExecuteAndMeasure(
    const QuerySpec& query, const Configuration& config) {
  AIMAI_CHECK(what_if != nullptr && executor != nullptr);
  const PhysicalPlan* optimized = what_if->Optimize(query, config);

  Measurement out;
  out.plan = optimized->Clone();
  indexes->Materialize(config);
  executor->Execute(out.plan.get());
  exec_cost->ComputeActualCost(out.plan.get());

  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(cost_samples));
  for (int s = 0; s < cost_samples; ++s) {
    samples.push_back(exec_cost->SampleNoisyCost(*out.plan, noise_rng));
  }
  out.median_cost = Median(std::move(samples));
  return out;
}

int TuningEnv::Record(const QuerySpec& query, const Configuration& config,
                      Measurement measurement,
                      ExecutionDataRepository* repo) const {
  PlanFeaturizer featurizer(AllChannels());
  ExecutedPlan rec;
  rec.database_id = database_id;
  rec.db_name = db->name();
  rec.query_name = query.name;
  rec.template_hash = query.TemplateHash();
  rec.config_fp = config.Fingerprint();
  rec.exec_cost = measurement.median_cost;
  rec.est_cost = measurement.plan->est_total_cost;
  rec.features = featurizer.Featurize(*measurement.plan);
  rec.plan = std::move(measurement.plan);
  return repo->Add(std::move(rec));
}

ContinuousTuner::QueryTrace ContinuousTuner::TuneQuery(
    const QuerySpec& query, const Configuration& initial,
    const ComparatorFactory& comparator_factory,
    ExecutionDataRepository* repo, const AdaptHook& adapt_hook) {
  QueryTrace trace;
  trace.query_name = query.name;

  Configuration current = initial;
  TuningEnv::Measurement baseline = env_->ExecuteAndMeasure(query, current);
  trace.initial_cost = baseline.median_cost;
  double current_cost = baseline.median_cost;
  if (repo != nullptr) {
    env_->Record(query, current, std::move(baseline), repo);
  }

  QueryLevelTuner::Options qopts;
  qopts.max_new_indexes = options_.max_indexes_per_iteration;
  qopts.storage_budget_bytes = options_.storage_budget_bytes;
  QueryLevelTuner tuner(env_->db, env_->what_if, candidates_, qopts);

  for (int it = 1; it <= options_.iterations; ++it) {
    std::unique_ptr<CostComparator> comparator = comparator_factory();
    const QueryTuningResult rec = tuner.Tune(query, current, *comparator);
    if (rec.new_indexes.empty()) break;  // No recommendation available.

    TuningEnv::Measurement m =
        env_->ExecuteAndMeasure(query, rec.recommended);
    IterationRecord ir;
    ir.iteration = it;
    ir.num_new_indexes = static_cast<int>(rec.new_indexes.size());
    ir.measured_cost = m.median_cost;

    const bool regressed =
        m.median_cost >
        (1.0 + options_.regression_threshold) * current_cost;
    ir.regressed = regressed;
    trace.regress_final = regressed;

    if (repo != nullptr) {
      env_->Record(query, rec.recommended, std::move(m), repo);
    }
    if (adapt_hook) adapt_hook();

    if (regressed) {
      // Revert: keep `current` (the regressed indexes are dropped).
      trace.iterations.push_back(ir);
      if (options_.stop_on_regression) break;
      continue;
    }
    current = rec.recommended;
    current_cost = ir.measured_cost;
    trace.iterations.push_back(ir);
  }

  trace.final_cost = current_cost;
  trace.final_config = current;
  trace.improve_cumulative =
      trace.final_cost <=
      (1.0 - options_.regression_threshold) * trace.initial_cost;
  return trace;
}

ContinuousTuner::WorkloadTrace ContinuousTuner::TuneWorkload(
    const std::vector<WorkloadQuery>& workload, const Configuration& initial,
    const ComparatorFactory& comparator_factory,
    ExecutionDataRepository* repo, const AdaptHook& adapt_hook) {
  WorkloadTrace trace;

  Configuration current = initial;
  std::vector<double> query_costs(workload.size(), 0.0);
  double total = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    TuningEnv::Measurement m =
        env_->ExecuteAndMeasure(workload[i].query, current);
    query_costs[i] = m.median_cost;
    total += workload[i].weight * m.median_cost;
    if (repo != nullptr) {
      env_->Record(workload[i].query, current, std::move(m), repo);
    }
  }
  trace.initial_cost = total;
  double current_cost = total;

  WorkloadLevelTuner::Options wopts;
  wopts.max_new_indexes = options_.max_indexes_per_iteration;
  wopts.storage_budget_bytes = options_.storage_budget_bytes;
  WorkloadLevelTuner tuner(env_->db, env_->what_if, candidates_, wopts);

  for (int it = 1; it <= options_.iterations; ++it) {
    std::unique_ptr<CostComparator> comparator = comparator_factory();
    const WorkloadTuningResult rec =
        tuner.Tune(workload, current, *comparator);
    if (rec.new_indexes.empty()) break;

    // Measure every query under the recommendation.
    std::vector<double> new_costs(workload.size(), 0.0);
    double new_total = 0;
    bool any_regressed = false;
    for (size_t i = 0; i < workload.size(); ++i) {
      TuningEnv::Measurement m =
          env_->ExecuteAndMeasure(workload[i].query, rec.recommended);
      new_costs[i] = m.median_cost;
      new_total += workload[i].weight * m.median_cost;
      if (m.median_cost >
          (1.0 + options_.regression_threshold) * query_costs[i]) {
        any_regressed = true;
      }
      if (repo != nullptr) {
        env_->Record(workload[i].query, rec.recommended, std::move(m), repo);
      }
    }
    if (adapt_hook) adapt_hook();

    IterationRecord ir;
    ir.iteration = it;
    ir.num_new_indexes = static_cast<int>(rec.new_indexes.size());
    ir.measured_cost = new_total;
    ir.regressed = any_regressed;
    trace.iterations.push_back(ir);

    if (any_regressed) {
      if (options_.stop_on_regression) break;
      continue;  // Revert to `current`.
    }
    current = rec.recommended;
    query_costs = std::move(new_costs);
    current_cost = new_total;
  }

  trace.final_cost = current_cost;
  trace.final_config = current;
  return trace;
}

}  // namespace aimai
