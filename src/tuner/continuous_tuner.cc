#include "tuner/continuous_tuner.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/stats.h"
#include "obs/obs.h"
#include "tuner/parallel.h"
#include "tuner/query_tuner.h"

namespace aimai {

namespace {

// Warms the what-if cache for every workload query under `config`. Pure
// optimizer calls — no fault injection, no execution — so the serial
// measurement loops that follow consume cached plans without their
// fault/retry accounting changing by a single ShouldFail() draw. A no-op
// when the fan-out would not actually parallelize (the serial path then
// performs exactly the calls it always did).
void PrefetchPlans(ThreadPool* tp, WhatIfOptimizer* what_if,
                   const std::vector<WorkloadQuery>& workload,
                   const Configuration& config) {
  if (!WouldParallelize(tp, workload.size())) return;
  TunerParallelFor(tp, workload.size(), [&](size_t i) {
    what_if->Optimize(workload[i].query, config);
  });
}

}  // namespace

StatusOr<TuningEnv::Measurement> TuningEnv::TryExecuteAndMeasure(
    const QuerySpec& query, const Configuration& config) {
  if (what_if == nullptr || executor == nullptr || indexes == nullptr ||
      exec_cost == nullptr) {
    return Status::FailedPrecondition("TuningEnv is not fully wired");
  }
  AIMAI_SPAN("tuner.measure");
  AIMAI_COUNTER_INC("tuner.measurements");
  RetryPolicy policy(retry, noise_rng);

  // What-if optimization, retried across injected timeouts. The shared
  // handle pins the plan: ClearCache() or eviction between here and the
  // Clone() below can no longer free it out from under us.
  std::shared_ptr<const PhysicalPlan> optimized;
  const RetryPolicy::Outcome opt_outcome = policy.Run([&]() -> Status {
    if (faults != nullptr &&
        faults->ShouldFail(FaultPoint::kWhatIfTimeout)) {
      ++resilience.what_if_timeouts;
      return Status::DeadlineExceeded("what-if optimize timed out");
    }
    optimized = what_if->Optimize(query, config);
    return Status::Ok();
  });
  resilience.execution_retries += opt_outcome.attempts - 1;
  resilience.total_backoff_ms += opt_outcome.total_backoff_ms;
  if (!opt_outcome.status.ok()) {
    ++resilience.execution_failures;
    return opt_outcome.status;
  }

  Measurement out;
  out.plan = optimized->Clone();
  indexes->Materialize(config);

  // The execution itself, retried across injected failures.
  const RetryPolicy::Outcome exec_outcome = policy.Run([&]() -> Status {
    ++resilience.execution_attempts;
    if (faults != nullptr &&
        faults->ShouldFail(FaultPoint::kQueryExecution)) {
      ++resilience.execution_faults;
      return Status::Unavailable("query execution failed");
    }
    executor->Execute(out.plan.get());
    return Status::Ok();
  });
  resilience.execution_retries += exec_outcome.attempts - 1;
  resilience.total_backoff_ms += exec_outcome.total_backoff_ms;
  if (!exec_outcome.status.ok()) {
    ++resilience.execution_failures;
    return exec_outcome.status;
  }
  exec_cost->ComputeActualCost(out.plan.get());

  // Cost sampling degrades instead of failing: a lost sample (a re-run
  // the platform killed) is dropped, a noisy-neighbor spike inflates one
  // sample, and the median is taken over whatever survived.
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(cost_samples));
  for (int s = 0; s < cost_samples; ++s) {
    const double cost = exec_cost->SampleNoisyCost(*out.plan, noise_rng);
    if (faults != nullptr) {
      if (faults->ShouldFail(FaultPoint::kQueryExecution)) {
        ++resilience.cost_samples_dropped;
        continue;
      }
      samples.push_back(
          cost * faults->SpikeFactor(FaultPoint::kCostNoiseSpike));
    } else {
      samples.push_back(cost);
    }
  }
  if (samples.empty()) {
    ++resilience.execution_failures;
    return Status::Unavailable("all cost samples lost");
  }
  out.samples_used = static_cast<int>(samples.size());
  if (out.samples_used < cost_samples) ++resilience.degraded_measurements;
  out.median_cost = Median(std::move(samples));
  return out;
}

TuningEnv::Measurement TuningEnv::ExecuteAndMeasure(
    const QuerySpec& query, const Configuration& config) {
  StatusOr<Measurement> m = TryExecuteAndMeasure(query, config);
  AIMAI_CHECK_MSG(m.ok(), m.status().message().c_str());
  return std::move(m).value();
}

int TuningEnv::Record(const QuerySpec& query, const Configuration& config,
                      Measurement measurement,
                      ExecutionDataRepository* repo) const {
  PlanFeaturizer featurizer(AllChannels());
  ExecutedPlan rec;
  rec.database_id = database_id;
  rec.db_name = db->name();
  rec.query_name = query.name;
  rec.template_hash = query.TemplateHash();
  rec.config_fp = config.Fingerprint();
  rec.exec_cost = measurement.median_cost;
  rec.est_cost = measurement.plan->est_total_cost;
  rec.features = featurizer.Featurize(*measurement.plan);
  rec.plan = std::move(measurement.plan);
  return repo->Add(std::move(rec));
}

void ContinuousTuner::VerifyRevert(const QuerySpec& query,
                                   const Configuration& restored,
                                   double expected_cost,
                                   double expected_est_cost) {
  StatusOr<TuningEnv::Measurement> v =
      env_->TryExecuteAndMeasure(query, restored);
  if (!v.ok()) {
    ++env_->resilience.revert_verification_failures;
    return;
  }
  // Same configuration => the optimizer must reproduce the same plan
  // (exact estimate match, deterministic), and the measured cost must be
  // back inside the regression band, with slack for sampling noise.
  const bool plan_restored =
      std::abs(v->plan->est_total_cost - expected_est_cost) <=
      1e-9 * std::max(1.0, std::abs(expected_est_cost));
  const bool cost_restored =
      v->median_cost <=
      (1.0 + options_.regression_threshold) * 1.5 * expected_cost;
  if (plan_restored && cost_restored) {
    ++env_->resilience.reverts_verified;
  } else {
    ++env_->resilience.revert_verification_failures;
  }
}

ContinuousTuner::QueryTrace ContinuousTuner::TraceFromState(
    const QuerySpec& query, const QueryState& state) {
  QueryTrace trace;
  trace.query_name = query.name;
  trace.completed = state.initialized;
  trace.initial_cost = state.initial_cost;
  trace.final_cost = state.current_cost;
  trace.final_config = state.current;
  trace.iterations = state.iterations;
  trace.regress_final = state.regress_final;
  trace.improve_cumulative =
      state.initialized && trace.final_cost <= trace.initial_cost;
  return trace;
}

ContinuousTuner::QueryTrace ContinuousTuner::TuneQuery(
    const QuerySpec& query, const Configuration& initial,
    const ComparatorFactory& comparator_factory,
    ExecutionDataRepository* repo, const AdaptHook& adapt_hook) {
  QueryState state;
  state.current = initial;
  return TuneQueryResumable(query, &state, comparator_factory, repo,
                            adapt_hook);
}

StatusOr<ContinuousTuner::QueryTrace> ContinuousTuner::TryTuneQuery(
    const QuerySpec& query, const Configuration& initial,
    const ComparatorFactory& comparator_factory,
    ExecutionDataRepository* repo, const AdaptHook& adapt_hook) {
  if (env_ == nullptr || env_->what_if == nullptr || candidates_ == nullptr) {
    return Status::FailedPrecondition("ContinuousTuner is not fully wired");
  }
  AIMAI_RETURN_IF_ERROR(env_->what_if->ValidateQuery(query));
  QueryState state;
  state.current = initial;
  QueryTrace trace = TuneQueryResumable(query, &state, comparator_factory,
                                        repo, adapt_hook);
  if (!state.finished && Cancelled(options_.cancel)) {
    return Status::Cancelled("continuous tuning cancelled at iteration " +
                             std::to_string(state.next_iteration));
  }
  return trace;
}

ContinuousTuner::QueryTrace ContinuousTuner::TuneQueryResumable(
    const QuerySpec& query, QueryState* state,
    const ComparatorFactory& comparator_factory,
    ExecutionDataRepository* repo, const AdaptHook& adapt_hook) {
  AIMAI_SPAN("tuner.continuous.query");

  if (!state->initialized && !state->finished) {
    StatusOr<TuningEnv::Measurement> baseline_or =
        env_->TryExecuteAndMeasure(query, state->current);
    if (!baseline_or.ok()) {
      // The query is unmeasurable even with retries; nothing to tune
      // against. Surface an empty-but-honest trace instead of aborting.
      state->finished = true;
      env_->resilience.PublishDeltaTo(&obs::Registry());
      return TraceFromState(query, *state);
    }
    TuningEnv::Measurement baseline = std::move(baseline_or).value();
    state->initial_cost = baseline.median_cost;
    state->current_cost = baseline.median_cost;
    state->current_est_cost = baseline.plan->est_total_cost;
    state->initialized = true;
    if (repo != nullptr) {
      env_->Record(query, state->current, std::move(baseline), repo);
    }
  }

  QueryLevelTuner::Options qopts;
  qopts.max_new_indexes = options_.max_indexes_per_iteration;
  qopts.storage_budget_bytes = options_.storage_budget_bytes;
  qopts.pool = options_.pool;
  qopts.cancel = options_.cancel;
  QueryLevelTuner tuner(env_->db, env_->what_if, candidates_, qopts);

  for (int it = state->next_iteration;
       !state->finished && it <= options_.iterations;
       it = state->next_iteration) {
    if (Cancelled(options_.cancel)) break;  // Resumable: state stays live.
    AIMAI_SPAN("tuner.continuous.iteration");
    AIMAI_COUNTER_INC("tuner.continuous.iterations");
    std::unique_ptr<CostComparator> comparator = comparator_factory();
    const QueryTuningResult rec =
        tuner.Tune(query, state->current, *comparator);
    if (Cancelled(options_.cancel)) break;  // Mid-round stop: iteration unspent.
    if (rec.new_indexes.empty()) {  // No recommendation available.
      state->finished = true;
      break;
    }
    state->next_iteration = it + 1;

    const std::string fp = rec.recommended.Fingerprint();
    if (state->quarantined.count(fp) > 0) {
      ++env_->resilience.quarantine_skips;
      IterationRecord ir;
      ir.iteration = it;
      ir.num_new_indexes = static_cast<int>(rec.new_indexes.size());
      ir.quarantined = true;
      state->iterations.push_back(ir);
      // An adaptive comparator may recommend differently next iteration;
      // a repeat of the same benched fingerprint means we are stuck.
      if (fp == state->last_skipped_fp) {
        state->finished = true;
        break;
      }
      state->last_skipped_fp = fp;
      continue;
    }

    StatusOr<TuningEnv::Measurement> m_or =
        env_->TryExecuteAndMeasure(query, rec.recommended);
    if (!m_or.ok()) {
      // Measurement lost to faults: the iteration is spent, the current
      // configuration stands, and the loop carries on.
      ++env_->resilience.failed_iterations;
      IterationRecord ir;
      ir.iteration = it;
      ir.num_new_indexes = static_cast<int>(rec.new_indexes.size());
      ir.failed = true;
      state->iterations.push_back(ir);
      continue;
    }
    TuningEnv::Measurement m = std::move(m_or).value();
    IterationRecord ir;
    ir.iteration = it;
    ir.num_new_indexes = static_cast<int>(rec.new_indexes.size());
    ir.measured_cost = m.median_cost;

    const bool regressed =
        m.median_cost >
        (1.0 + options_.regression_threshold) * state->current_cost;
    ir.regressed = regressed;
    state->regress_final = regressed;
    const double rec_est_cost = m.plan->est_total_cost;

    if (repo != nullptr) {
      env_->Record(query, rec.recommended, std::move(m), repo);
    }
    if (adapt_hook) adapt_hook();

    if (regressed) {
      // Revert: keep `current` (the regressed indexes are dropped).
      ++env_->resilience.reverts;
      if (++state->regression_counts[fp] >= options_.quarantine_after) {
        state->quarantined.insert(fp);
        ++env_->resilience.quarantined_recommendations;
      }
      if (options_.verify_reverts) {
        VerifyRevert(query, state->current, state->current_cost,
                     state->current_est_cost);
      }
      state->iterations.push_back(ir);
      if (options_.stop_on_regression) {
        state->finished = true;
        break;
      }
      continue;
    }
    state->current = rec.recommended;
    state->current_cost = ir.measured_cost;
    state->current_est_cost = rec_est_cost;
    state->iterations.push_back(ir);
  }
  if (state->next_iteration > options_.iterations) state->finished = true;

  QueryTrace trace = TraceFromState(query, *state);
  trace.improve_cumulative =
      trace.final_cost <=
      (1.0 - options_.regression_threshold) * trace.initial_cost;
  env_->resilience.PublishDeltaTo(&obs::Registry());
  return trace;
}

ContinuousTuner::WorkloadTrace ContinuousTuner::TuneWorkload(
    const std::vector<WorkloadQuery>& workload, const Configuration& initial,
    const ComparatorFactory& comparator_factory,
    ExecutionDataRepository* repo, const AdaptHook& adapt_hook) {
  AIMAI_SPAN("tuner.continuous.workload");
  WorkloadTrace trace;
  ThreadPool* tp = options_.pool != nullptr ? options_.pool : SharedPool();

  Configuration current = initial;
  std::vector<double> query_costs(workload.size(), 0.0);
  std::vector<double> query_est_costs(workload.size(), 0.0);
  double total = 0;
  PrefetchPlans(tp, env_->what_if, workload, current);
  for (size_t i = 0; i < workload.size(); ++i) {
    StatusOr<TuningEnv::Measurement> m_or =
        env_->TryExecuteAndMeasure(workload[i].query, current);
    if (!m_or.ok()) {
      // No baseline for this query; without it regressions cannot be
      // detected, so the whole run is not tunable.
      trace.completed = false;
      trace.final_config = current;
      env_->resilience.PublishDeltaTo(&obs::Registry());
      return trace;
    }
    TuningEnv::Measurement m = std::move(m_or).value();
    query_costs[i] = m.median_cost;
    query_est_costs[i] = m.plan->est_total_cost;
    total += workload[i].weight * m.median_cost;
    if (repo != nullptr) {
      env_->Record(workload[i].query, current, std::move(m), repo);
    }
  }
  trace.initial_cost = total;
  double current_cost = total;

  WorkloadLevelTuner::Options wopts;
  wopts.max_new_indexes = options_.max_indexes_per_iteration;
  wopts.storage_budget_bytes = options_.storage_budget_bytes;
  wopts.pool = options_.pool;
  wopts.cancel = options_.cancel;
  WorkloadLevelTuner tuner(env_->db, env_->what_if, candidates_, wopts);

  std::unordered_map<std::string, int> regression_counts;
  std::unordered_set<std::string> quarantined;
  std::string last_skipped_fp;

  for (int it = 1; it <= options_.iterations; ++it) {
    if (Cancelled(options_.cancel)) break;  // Stop at iteration boundary.
    AIMAI_SPAN("tuner.continuous.iteration");
    AIMAI_COUNTER_INC("tuner.continuous.iterations");
    std::unique_ptr<CostComparator> comparator = comparator_factory();
    const WorkloadTuningResult rec =
        tuner.Tune(workload, current, *comparator);
    if (Cancelled(options_.cancel)) break;
    if (rec.new_indexes.empty()) break;

    const std::string fp = rec.recommended.Fingerprint();
    if (quarantined.count(fp) > 0) {
      ++env_->resilience.quarantine_skips;
      IterationRecord ir;
      ir.iteration = it;
      ir.num_new_indexes = static_cast<int>(rec.new_indexes.size());
      ir.quarantined = true;
      trace.iterations.push_back(ir);
      if (fp == last_skipped_fp) break;
      last_skipped_fp = fp;
      continue;
    }

    // Measure every query under the recommendation. A failed measurement
    // fails the iteration (the recommendation is not adopted on partial
    // evidence), but not the run.
    std::vector<double> new_costs(workload.size(), 0.0);
    std::vector<double> new_est_costs(workload.size(), 0.0);
    double new_total = 0;
    bool any_regressed = false;
    bool any_failed = false;
    PrefetchPlans(tp, env_->what_if, workload, rec.recommended);
    for (size_t i = 0; i < workload.size(); ++i) {
      StatusOr<TuningEnv::Measurement> m_or =
          env_->TryExecuteAndMeasure(workload[i].query, rec.recommended);
      if (!m_or.ok()) {
        any_failed = true;
        break;
      }
      TuningEnv::Measurement m = std::move(m_or).value();
      new_costs[i] = m.median_cost;
      new_est_costs[i] = m.plan->est_total_cost;
      new_total += workload[i].weight * m.median_cost;
      if (m.median_cost >
          (1.0 + options_.regression_threshold) * query_costs[i]) {
        any_regressed = true;
      }
      if (repo != nullptr) {
        env_->Record(workload[i].query, rec.recommended, std::move(m), repo);
      }
    }
    if (any_failed) {
      ++env_->resilience.failed_iterations;
      IterationRecord ir;
      ir.iteration = it;
      ir.num_new_indexes = static_cast<int>(rec.new_indexes.size());
      ir.failed = true;
      trace.iterations.push_back(ir);
      continue;
    }
    if (adapt_hook) adapt_hook();

    IterationRecord ir;
    ir.iteration = it;
    ir.num_new_indexes = static_cast<int>(rec.new_indexes.size());
    ir.measured_cost = new_total;
    ir.regressed = any_regressed;
    trace.iterations.push_back(ir);

    if (any_regressed) {
      ++env_->resilience.reverts;
      if (++regression_counts[fp] >= options_.quarantine_after) {
        quarantined.insert(fp);
        ++env_->resilience.quarantined_recommendations;
      }
      if (options_.verify_reverts) {
        // The restored configuration must reproduce every query's
        // pre-regression plan (exact estimate match: same config => same
        // deterministic optimizer output).
        bool restored_ok = true;
        PrefetchPlans(tp, env_->what_if, workload, current);
        for (size_t i = 0; i < workload.size(); ++i) {
          const std::shared_ptr<const PhysicalPlan> restored =
              env_->what_if->Optimize(workload[i].query, current);
          if (std::abs(restored->est_total_cost - query_est_costs[i]) >
              1e-9 * std::max(1.0, std::abs(query_est_costs[i]))) {
            restored_ok = false;
            break;
          }
        }
        if (restored_ok) {
          ++env_->resilience.reverts_verified;
        } else {
          ++env_->resilience.revert_verification_failures;
        }
      }
      if (options_.stop_on_regression) break;
      continue;  // Revert to `current`.
    }
    current = rec.recommended;
    query_costs = std::move(new_costs);
    query_est_costs = std::move(new_est_costs);
    current_cost = new_total;
  }

  trace.final_cost = current_cost;
  trace.final_config = current;
  env_->resilience.PublishDeltaTo(&obs::Registry());
  return trace;
}

}  // namespace aimai
