#ifndef AIMAI_TUNER_BATCHED_COMPARATOR_H_
#define AIMAI_TUNER_BATCHED_COMPARATOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "featurize/feature_cache.h"
#include "ml/model.h"
#include "tuner/comparator.h"

namespace aimai {

/// ML comparator with a batched inference fast path. Semantically it is
/// ModelComparator over a trained Classifier (IsRegression: label ==
/// kRegression; IsImprovement: kImprovement, or kUnsure with the
/// optimizer's estimates breaking the tie) — but it additionally honors
/// CostComparator::Prime: when the tuner announces a round's candidate
/// fan-out, it featurizes every fresh pair in parallel, runs ONE
/// PredictBatch over the flattened feature matrix, and memoizes the
/// labels. The serial decision replay then reduces to hash lookups.
///
/// Bit-identity: PredictBatch is bit-identical to the scalar path by the
/// Classifier contract, and labels are pure functions of the pair, so a
/// primed run answers exactly like an unprimed (scalar) run.
///
/// Thread-safe; both memos are bounded FIFO (the feature cache mirrors
/// the what-if cache design and feeds `featurize.cache_{hits,evictions}`).
class ClassifierComparator : public CostComparator {
 public:
  struct Options {
    /// Capacity of the pair-feature memo (PairFeatureCache).
    size_t feature_cache_capacity = PairFeatureCache::kDefaultCapacity;
    /// Capacity of the label memo.
    size_t label_cache_capacity = PairFeatureCache::kDefaultCapacity;
  };

  ClassifierComparator(std::shared_ptr<const Classifier> classifier,
                       PairFeaturizer featurizer)
      : ClassifierComparator(std::move(classifier), std::move(featurizer),
                             Options()) {}

  ClassifierComparator(std::shared_ptr<const Classifier> classifier,
                       PairFeaturizer featurizer, Options options);

  bool IsRegression(const PhysicalPlan& p1,
                    const PhysicalPlan& p2) const override;
  bool IsImprovement(const PhysicalPlan& p1,
                     const PhysicalPlan& p2) const override;
  void Prime(const std::vector<PlanPairView>& pairs,
             ThreadPool* pool) const override;

  /// Predicted PairLabel for the ordered pair (memoized).
  int Label(const PhysicalPlan& p1, const PhysicalPlan& p2) const;

  const PairFeaturizer& featurizer() const { return featurizer_; }
  const PairFeatureCache& feature_cache() const { return features_; }

  /// Pairs labeled through the batched path (diagnostics / tests).
  int64_t num_batched_labels() const;
  /// Label-memo hits (decisions answered without touching the model).
  int64_t num_label_hits() const;

  /// Observer of every fresh label this comparator produces (scalar and
  /// batched paths alike). Must outlive the comparator; nullptr (the
  /// default) disables. Set before the comparator is shared.
  void set_decision_sink(ComparatorDecisionSink* sink) { sink_ = sink; }

 private:
  using Key = std::pair<uint64_t, uint64_t>;
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.first * 1099511628211ULL ^ k.second);
    }
  };

  /// Memoized scalar label for a key whose pair is at hand.
  int LabelForKey(const Key& key, const PhysicalPlan& p1,
                  const PhysicalPlan& p2) const;
  /// Caller must hold labels_mu_.
  void StoreLabelLocked(const Key& key, int label) const;

  std::shared_ptr<const Classifier> classifier_;
  PairFeaturizer featurizer_;
  Options options_;
  ComparatorDecisionSink* sink_ = nullptr;
  mutable PairFeatureCache features_;
  mutable std::mutex labels_mu_;
  mutable std::unordered_map<Key, int, KeyHash> labels_;
  mutable std::deque<Key> label_fifo_;
  mutable int64_t num_batched_labels_ = 0;
  mutable int64_t num_label_hits_ = 0;
};

}  // namespace aimai

#endif  // AIMAI_TUNER_BATCHED_COMPARATOR_H_
