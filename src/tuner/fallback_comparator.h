#ifndef AIMAI_TUNER_FALLBACK_COMPARATOR_H_
#define AIMAI_TUNER_FALLBACK_COMPARATOR_H_

#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "common/status.h"
#include "featurize/feature_cache.h"
#include "robustness/circuit_breaker.h"
#include "robustness/resilience.h"
#include "tuner/comparator.h"

namespace aimai {

/// Resilient ML comparator (§5 under failure): wraps a fallible label
/// model in a circuit breaker and degrades to the classical
/// OptimizerComparator — the tuner must keep answering regression/
/// improvement questions even when the model is missing, erroring, or
/// persistently unsure.
///
///  - Model inference errors and long kUnsure streaks count as breaker
///    failures; `failure_threshold` consecutive ones trip it.
///  - While open, every decision is answered by the optimizer fallback
///    (each denied call advances the deterministic cooldown).
///  - After the cooldown the breaker half-opens: probe decisions consult
///    the model again, and enough clean answers close the circuit.
class FallbackComparator : public CostComparator {
 public:
  /// Label model over pair features; errors are survivable here, unlike
  /// ModelComparator's infallible LabelFn.
  using StatusLabelFn =
      std::function<StatusOr<int>(const std::vector<double>&)>;

  struct Options {
    CircuitBreaker::Options breaker;
    /// This many consecutive kUnsure labels count as one breaker failure
    /// (a model that cannot commit is as useless as one that errors).
    int unsure_streak_threshold = 4;
  };

  FallbackComparator(PairFeaturizer featurizer, StatusLabelFn label_fn,
                     OptimizerComparator fallback)
      : FallbackComparator(std::move(featurizer), std::move(label_fn),
                           fallback, Options(), nullptr) {}

  FallbackComparator(PairFeaturizer featurizer, StatusLabelFn label_fn,
                     OptimizerComparator fallback, Options options,
                     ResilienceStats* stats = nullptr)
      : featurizer_(std::move(featurizer)),
        label_fn_(std::move(label_fn)),
        fallback_(fallback),
        options_(options),
        breaker_(options.breaker),
        stats_(stats) {}

  bool IsRegression(const PhysicalPlan& p1,
                    const PhysicalPlan& p2) const override;
  bool IsImprovement(const PhysicalPlan& p1,
                     const PhysicalPlan& p2) const override;

  const CircuitBreaker& breaker() const { return breaker_; }

  /// Pair-featurization memo (diagnostics / tests).
  const PairFeatureCache& feature_cache() const { return features_; }

 private:
  enum class Question { kRegression, kImprovement };
  bool Decide(const PhysicalPlan& p1, const PhysicalPlan& p2,
              Question q) const;
  bool FallbackDecide(const PhysicalPlan& p1, const PhysicalPlan& p2,
                      Question q) const;
  /// Routes breaker feedback and mirrors trips/recoveries into stats_.
  void Record(bool success) const;

  PairFeaturizer featurizer_;
  StatusLabelFn label_fn_;
  OptimizerComparator fallback_;
  /// Memoizes feature vectors by plan content fingerprints. Featurization
  /// is pure, so caching does not perturb the breaker's decision stream.
  mutable PairFeatureCache features_;
  Options options_;
  // Decide() mutates the breaker and the unsure streak, so a shared
  // comparator hit from parallel query-level tuning serializes decisions
  // under this mutex. Note the breaker's evolution then depends on the
  // thread interleaving: unlike the pure comparators, a stateful
  // FallbackComparator shared across a parallel phase is thread-SAFE but
  // not decision-DETERMINISTIC across different thread counts.
  mutable std::mutex mu_;
  // The comparator interface is const; the breaker is bookkeeping.
  mutable CircuitBreaker breaker_;
  mutable int unsure_streak_ = 0;
  ResilienceStats* stats_;
};

}  // namespace aimai

#endif  // AIMAI_TUNER_FALLBACK_COMPARATOR_H_
