#include "tuner/query_tuner.h"

#include "common/check.h"
#include "obs/obs.h"

namespace aimai {

QueryTuningResult QueryLevelTuner::Tune(const QuerySpec& query,
                                        const Configuration& base,
                                        const CostComparator& comparator) {
  AIMAI_SPAN("tuner.query_tune");
  QueryTuningResult result;
  result.recommended = base;
  result.base_plan = what_if_->Optimize(query, base);
  result.final_plan = result.base_plan;

  const std::vector<IndexDef> candidates =
      candidates_->Generate(query, base);

  Configuration current = base;
  const PhysicalPlan* current_plan = result.base_plan;

  for (int round = 0; round < options_.max_new_indexes; ++round) {
    AIMAI_COUNTER_INC("tuner.query.rounds");
    const IndexDef* best_index = nullptr;
    const PhysicalPlan* best_plan = current_plan;

    for (const IndexDef& cand : candidates) {
      if (current.Contains(cand.CanonicalName())) continue;
      Configuration next = current;
      next.Add(cand);
      if (options_.storage_budget_bytes > 0 &&
          next.EstimateSizeBytes(*db_) > options_.storage_budget_bytes) {
        continue;
      }
      const PhysicalPlan* plan = what_if_->Optimize(query, next);
      AIMAI_COUNTER_INC("tuner.query.candidates_evaluated");
      bool adopt = false;
      {
        AIMAI_SPAN("tuner.comparator_decide");
        // No-regression constraint against the invocation configuration.
        if (comparator.IsRegression(*result.base_plan, *plan)) {
          AIMAI_COUNTER_INC("tuner.query.regression_vetoes");
        } else if (comparator.IsImprovement(*best_plan, *plan)) {
          // Adopt only predicted improvements over the best plan so far.
          adopt = true;
        }
      }
      if (adopt) {
        best_index = &cand;
        best_plan = plan;
      }
    }

    if (best_index == nullptr) break;
    AIMAI_COUNTER_INC("tuner.query.indexes_adopted");
    current.Add(*best_index);
    result.new_indexes.push_back(*best_index);
    current_plan = best_plan;
  }

  result.recommended = current;
  result.final_plan = current_plan;
  return result;
}

}  // namespace aimai
