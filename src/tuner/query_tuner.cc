#include "tuner/query_tuner.h"

#include <utility>

#include "common/check.h"
#include "obs/obs.h"
#include "tuner/parallel.h"

namespace aimai {

QueryTuningResult QueryLevelTuner::Tune(const QuerySpec& query,
                                        const Configuration& base,
                                        const CostComparator& comparator) {
  AIMAI_SPAN("tuner.query_tune");
  ThreadPool* tp = options_.pool != nullptr ? options_.pool : SharedPool();
  QueryTuningResult result;
  result.recommended = base;
  result.base_plan = what_if_->Optimize(query, base);
  result.final_plan = result.base_plan;

  const std::vector<IndexDef> candidates =
      candidates_->Generate(query, base);

  Configuration current = base;
  std::shared_ptr<const PhysicalPlan> current_plan = result.base_plan;

  for (int round = 0; round < options_.max_new_indexes; ++round) {
    if (Cancelled(options_.cancel)) break;  // Stop at a round boundary.
    AIMAI_COUNTER_INC("tuner.query.rounds");

    // Candidates admissible this round (not present, within budget), with
    // the configuration each would produce.
    std::vector<size_t> eligible;
    std::vector<Configuration> configs;
    for (size_t k = 0; k < candidates.size(); ++k) {
      if (current.Contains(candidates[k].CanonicalName())) continue;
      Configuration next = current;
      next.Add(candidates[k]);
      if (options_.storage_budget_bytes > 0 &&
          next.EstimateSizeBytes(*db_) > options_.storage_budget_bytes) {
        continue;
      }
      eligible.push_back(k);
      configs.push_back(std::move(next));
    }

    // Fan out the what-if calls: pure, cached, and independent. The
    // decisions below replay serially in candidate order, so the
    // comparator sees exactly the decision stream the serial tuner
    // produces — recommendations are bit-identical at any thread count.
    std::vector<std::shared_ptr<const PhysicalPlan>> plans(eligible.size());
    TunerParallelFor(tp, eligible.size(), [&](size_t j) {
      AIMAI_SPAN("tuner.candidate_eval");
      plans[j] = what_if_->Optimize(query, configs[j]);
    });

    // Announce the round's decision pairs: the regression gate always
    // compares against the base plan, and the improvement gate starts
    // from the current plan (later best_plan switches fall back to the
    // comparator's scalar path). A batched comparator answers all of
    // them with one model batch; answers are bit-identical either way.
    if (!eligible.empty()) {
      std::vector<PlanPairView> pending;
      pending.reserve(2 * eligible.size());
      for (const auto& plan : plans) {
        pending.push_back({result.base_plan.get(), plan.get()});
        pending.push_back({current_plan.get(), plan.get()});
      }
      comparator.Prime(pending, tp);
    }

    const IndexDef* best_index = nullptr;
    std::shared_ptr<const PhysicalPlan> best_plan = current_plan;

    for (size_t j = 0; j < eligible.size(); ++j) {
      const std::shared_ptr<const PhysicalPlan>& plan = plans[j];
      AIMAI_COUNTER_INC("tuner.query.candidates_evaluated");
      bool adopt = false;
      {
        AIMAI_SPAN("tuner.comparator_decide");
        // No-regression constraint against the invocation configuration.
        if (comparator.IsRegression(*result.base_plan, *plan)) {
          AIMAI_COUNTER_INC("tuner.query.regression_vetoes");
        } else if (comparator.IsImprovement(*best_plan, *plan)) {
          // Adopt only predicted improvements over the best plan so far.
          adopt = true;
        }
      }
      if (adopt) {
        best_index = &candidates[eligible[j]];
        best_plan = plan;
      }
    }

    if (best_index == nullptr) break;
    AIMAI_COUNTER_INC("tuner.query.indexes_adopted");
    current.Add(*best_index);
    result.new_indexes.push_back(*best_index);
    current_plan = std::move(best_plan);
  }

  result.recommended = current;
  result.final_plan = std::move(current_plan);
  return result;
}

StatusOr<QueryTuningResult> QueryLevelTuner::TryTune(
    const QuerySpec& query, const Configuration& base,
    const CostComparator& comparator) {
  if (db_ == nullptr || what_if_ == nullptr || candidates_ == nullptr) {
    return Status::FailedPrecondition("QueryLevelTuner is not fully wired");
  }
  AIMAI_RETURN_IF_ERROR(what_if_->ValidateQuery(query));
  QueryTuningResult result = Tune(query, base, comparator);
  if (Cancelled(options_.cancel)) {
    return Status::Cancelled("query tuning cancelled mid-round");
  }
  return result;
}

}  // namespace aimai
